//! Build and execute one scenario in the simulator.
//!
//! The entrypoint is the [`Runner`] builder:
//!
//! ```no_run
//! use elephants_experiments::prelude::*;
//! use elephants_experiments::runner::Runner;
//!
//! let cfg = ScenarioConfig::new(
//!     CcaKind::BbrV1, CcaKind::Cubic, AqmKind::Fifo, 2.0, 1_000_000_000,
//!     &RunOptions::standard(),
//! );
//! let outcome = Runner::new(&cfg).seed(7).repeats(3).run().unwrap();
//! println!("J = {}", outcome.averaged().jain);
//! ```
//!
//! Attaching a [`Recording`] makes the base-seed run write a versioned
//! [`FlightRecord`] (per-flow cwnd/pacing/srtt series, bottleneck-queue
//! series, optional packet trace) plus SVG dynamics figures, without
//! changing any metric of the run — the recorder is a pure observer.

use crate::scenario::ScenarioConfig;
use elephants_aqm::build_aqm;
use elephants_cca::build_cca_seeded;

use elephants_analysis::FairnessDynamics;
use elephants_json::{impl_json_struct, impl_json_unit_enum, ToJson};
use elephants_metrics::{RunMetrics, SenderThroughput};
use elephants_netsim::{
    CheckMode, CheckReport, RecorderConfig, SimConfig, SimDuration, SimTime, Simulator,
};
use elephants_tcp::{ReceiverConfig, SenderConfig, TcpReceiver, TcpSender};
use elephants_telemetry::{FlightRecord, FlightRecorder};
use elephants_workload::{group_specs, plan_flows};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// How many runs had a degenerate (zero-width) measurement window clamped
/// away (see [`Runner::run`]). A nonzero value means some scenario was
/// configured with `warmup >= duration`.
static DEGENERATE_WINDOW_RUNS: AtomicU64 = AtomicU64::new(0);

/// Number of runs so far whose measurement window had to be clamped.
pub fn degenerate_window_runs() -> u64 {
    DEGENERATE_WINDOW_RUNS.load(Ordering::Relaxed)
}

/// Process-wide default invariant-checking mode, picked up by every
/// [`Runner`] built after it is set (the CLI sets it from `--check` once,
/// before any sweep spawns workers). Stored as the `CheckMode` discriminant.
static CHECK_MODE: AtomicU8 = AtomicU8::new(CheckMode::Off as u8);

/// Set the process-wide default invariant-checking mode.
pub fn set_default_check_mode(mode: CheckMode) {
    CHECK_MODE.store(mode as u8, Ordering::Relaxed);
}

/// The process-wide default invariant-checking mode.
pub fn default_check_mode() -> CheckMode {
    match CHECK_MODE.load(Ordering::Relaxed) {
        x if x == CheckMode::Audit as u8 => CheckMode::Audit,
        x if x == CheckMode::Strict as u8 => CheckMode::Strict,
        _ => CheckMode::Off,
    }
}

/// Why a single (config, seed) run failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunErrorKind {
    /// A worker panicked; the payload is in `detail`.
    Panic,
    /// The run hit its `max_events` budget with events still pending.
    EventBudget,
    /// The run exceeded the wall-clock watchdog.
    WallClock,
    /// The config failed validation before the simulator was built.
    InvalidConfig,
    /// Writing a recording artifact (flight record, SVG) failed.
    Io,
}

impl_json_unit_enum!(RunErrorKind { Panic, EventBudget, WallClock, InvalidConfig, Io });

/// A failed run: what class of failure, plus a human-readable detail
/// (panic payload, budget numbers, validation message).
#[derive(Debug, Clone, PartialEq)]
pub struct RunError {
    /// Failure class.
    pub kind: RunErrorKind,
    /// Diagnostic detail.
    pub detail: String,
}

impl_json_struct!(RunError { kind, detail });

impl RunError {
    /// A panic-class error carrying the captured payload.
    pub fn panic(detail: impl Into<String>) -> Self {
        RunError { kind: RunErrorKind::Panic, detail: detail.into() }
    }

    /// Whether a retry could plausibly succeed: wall-clock overruns depend
    /// on machine load and IO errors on the filesystem, while the other
    /// classes are deterministic in `(config, seed)` and would fail
    /// identically again.
    pub fn is_retryable(&self) -> bool {
        self.kind == RunErrorKind::WallClock || self.kind == RunErrorKind::Io
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.detail)
    }
}

/// Default wall-clock watchdog for one run. Generous: the slowest cell of
/// the full paper grid takes a couple of minutes on one core; ten is a
/// hung simulation.
pub const DEFAULT_WALL_LIMIT: Duration = Duration::from_secs(600);

/// Default flight-recorder sample spacing (10 ms ≈ 6 samples per 62 ms RTT:
/// fine enough to resolve BBR's 8-phase ProbeBW cycle and CUBIC's sawtooth,
/// coarse enough that an hour of simulated time stays a few MB of JSON).
pub const DEFAULT_SAMPLE_INTERVAL: SimDuration = SimDuration::from_millis(10);

/// Default capacity of the bounded per-packet trace ring.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// What the flight recorder should capture during a run.
///
/// Build one with [`Recording::flows_only`] or parse the CLI spelling
/// (`--record flows,queue,events`) with [`Recording::parse`], then chain
/// setters. Attach it to a [`Runner`]; only the base-seed run records
/// (repeats stay cheap), and recording never changes the run's metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Recording {
    /// Sample per-flow cwnd/pacing/srtt/phase series.
    pub flows: bool,
    /// Sample the bottleneck queue (depth, drops, AQM control variable).
    pub queue: bool,
    /// Capture the bounded per-packet event trace at the bottleneck.
    pub events: bool,
    /// Sample spacing for the flow/queue series.
    pub interval: SimDuration,
    /// Ring capacity for the event trace; when it fills, later events are
    /// counted as truncated rather than recorded (keep-first semantics, so
    /// slow start and the first loss epoch survive verbatim).
    pub event_capacity: usize,
    /// Directory the flight record (and figures) are written into.
    pub out_dir: PathBuf,
    /// Also emit SVG dynamics figures (cwnd-vs-time, queue-vs-time).
    pub svg: bool,
}

impl Recording {
    /// Record only the per-flow series — the cheapest useful recording.
    pub fn flows_only() -> Self {
        Recording {
            flows: true,
            queue: false,
            events: false,
            interval: DEFAULT_SAMPLE_INTERVAL,
            event_capacity: DEFAULT_TRACE_CAPACITY,
            out_dir: PathBuf::from("out/records"),
            svg: true,
        }
    }

    /// Parse the CLI spelling: a comma-separated subset of
    /// `flows`, `queue`, `events` (e.g. `"flows,queue"`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut rec = Recording { flows: false, ..Recording::flows_only() };
        for part in spec.split(',') {
            match part.trim() {
                "flows" => rec.flows = true,
                "queue" => rec.queue = true,
                "events" => rec.events = true,
                other => {
                    return Err(format!(
                        "unknown --record channel {other:?} (expected flows, queue, events)"
                    ))
                }
            }
        }
        if !(rec.flows || rec.queue || rec.events) {
            return Err("empty --record spec: nothing to capture".to_string());
        }
        Ok(rec)
    }

    /// Override the sample spacing.
    pub fn interval(mut self, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "sample interval must be nonzero");
        self.interval = interval;
        self
    }

    /// Override the event-trace ring capacity.
    pub fn event_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be nonzero");
        self.event_capacity = capacity;
        self
    }

    /// Override the output directory.
    pub fn out_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.out_dir = dir.into();
        self
    }

    /// Enable or disable SVG figure emission.
    pub fn svg(mut self, svg: bool) -> Self {
        self.svg = svg;
        self
    }
}

/// Per-bottleneck-link diagnostics of one run. On the paper dumbbell this
/// vector has one entry mirroring the scalar fields of [`RunResult`];
/// parking-lot topologies report one entry per shaped hop.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkResult {
    /// Link id in the built topology.
    pub link: u32,
    /// Drops at this link (AQM drops + dark-link destruction).
    pub drops: u64,
    /// Packets destroyed while a fault held this link down.
    pub down_drops: u64,
    /// Largest queue depth observed at this link, in packets.
    pub peak_queue_pkts: u64,
    /// This link's wire utilization over the measurement window.
    pub utilization: f64,
}

impl_json_struct!(LinkResult { link, drops, down_drops, peak_queue_pkts, utilization });

/// Result of a single (config, seed) run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-flow-group goodput in Mbps over the measurement window (one
    /// entry per sender host; two on the paper dumbbell).
    pub sender_mbps: Vec<f64>,
    /// Jain index over the flow groups.
    pub jain: f64,
    /// Link utilization φ.
    pub utilization: f64,
    /// Retransmitted segments in the measurement window.
    pub retransmits: u64,
    /// RTO events over the run.
    pub rtos: u64,
    /// Bottleneck drops over the run.
    pub drops: u64,
    /// Packets destroyed at the bottleneck while a fault held it down.
    pub down_drops: u64,
    /// Flows simulated.
    pub flows: u32,
    /// Events processed (diagnostic; sample ticks are excluded, so this is
    /// identical whether or not the run was recorded).
    pub events: u64,
    /// Largest bottleneck-queue depth observed, in packets.
    pub peak_queue_pkts: u64,
    /// Fault-plan events that actually fired before the run ended. Events
    /// scheduled past `duration` validate but never fire, so this can be
    /// less than the plan's length — zero for a plan living entirely in
    /// the post-run tail.
    pub fault_events_applied: u64,
    /// Path of the flight record written for this run, if it recorded.
    pub record_path: Option<String>,
    /// Per-bottleneck-link diagnostics, ordered by the topology's shaped-
    /// link list. The scalar `drops`/`down_drops`/`peak_queue_pkts`/
    /// `utilization` fields above mirror entry 0 (the primary bottleneck).
    pub links: Vec<LinkResult>,
}

impl_json_struct!(RunResult {
    sender_mbps,
    jain,
    utilization,
    retransmits,
    rtos,
    drops,
    down_drops,
    flows,
    events,
    peak_queue_pkts,
    fault_events_applied,
    record_path,
    links,
});

impl RunResult {
    /// The paper's per-run metrics view of this result (goodput converted
    /// back to bits/s). Diagnostics — event counts, peak queue, the record
    /// path — are deliberately excluded, which makes this the right object
    /// to compare when asserting that recording does not perturb a run.
    pub fn metrics(&self) -> RunMetrics {
        RunMetrics {
            senders: self
                .sender_mbps
                .iter()
                .enumerate()
                .map(|(i, m)| SenderThroughput { sender: i as u32, goodput_bps: m * 1e6 })
                .collect(),
            jain: self.jain,
            utilization: self.utilization,
            retransmits: self.retransmits,
            rtos: self.rtos,
            drops: self.drops,
        }
    }
}

/// Everything a [`Runner`] produced: one [`RunResult`] per repeat, in seed
/// order (`seed`, `seed+1`, …).
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The scenario that ran.
    pub config: ScenarioConfig,
    /// Per-repeat results; never empty.
    pub runs: Vec<RunResult>,
    /// One invariant-check report per repeat when checking was enabled
    /// (audit or strict), in the same order as `runs`; empty otherwise.
    /// Deliberately *not* part of [`RunResult`]: the cache and figure
    /// pipelines consume `runs`, and the checker must never change what
    /// they see.
    pub check_reports: Vec<CheckReport>,
}

impl RunOutcome {
    /// The base-seed run (the one that records, when recording is on).
    pub fn first(&self) -> &RunResult {
        &self.runs[0]
    }

    /// Consume the outcome into its base-seed run.
    pub fn into_first(self) -> RunResult {
        self.runs.into_iter().next().expect("RunOutcome.runs is never empty")
    }

    /// Path of the flight record, if the base-seed run recorded one.
    pub fn record_path(&self) -> Option<&str> {
        self.first().record_path.as_deref()
    }

    /// Re-read the base-seed run's flight record through the versioned
    /// parser. Errors when the run did not record (attach a
    /// [`Recording`] with an `out_dir`) or the artifact fails to parse.
    pub fn load_record(&self) -> Result<FlightRecord, String> {
        let path = self
            .record_path()
            .ok_or("no flight record: run with .recorder(Recording::flows_only().out_dir(..))")?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        FlightRecord::parse(&text).map_err(|e| format!("parse {path}: {e}"))
    }

    /// Group assignment of every flow id in a run of this scenario: flows
    /// are added group by group, `per_sender` flows each, so flow `f`
    /// belongs to group `f / per_sender` (the mapping
    /// [`elephants_analysis::fairness_dynamics`] wants).
    pub fn flow_groups(&self) -> Vec<u32> {
        let n_groups = self.config.topology.n_groups() as u32;
        // The plan's per-sender flow count is seed-independent (only the
        // start jitter draws), so the config seed maps every repeat.
        let plan =
            plan_flows(self.config.bandwidth(), n_groups, self.config.flow_scale, self.config.seed);
        (0..n_groups).flat_map(|g| std::iter::repeat_n(g, plan.per_sender as usize)).collect()
    }

    /// Fairness dynamics of the base-seed run at the given window:
    /// windowed per-group shares, `J(t)` and burst-tolerant utilization,
    /// computed from the recorded `delivered_bytes` counters. The usual
    /// entry point into `elephants-analysis` after a recorded run.
    pub fn analysis(&self, window_s: f64) -> Result<FairnessDynamics, String> {
        let record = self.load_record()?;
        Ok(elephants_analysis::fairness_dynamics(
            &record,
            &self.flow_groups(),
            window_s,
            self.config.bw_bps as f64,
        ))
    }

    /// Total invariant violations across all repeats (0 when checking was
    /// off or every run was clean).
    pub fn check_violations(&self) -> u64 {
        self.check_reports.iter().map(|r| r.violations_total).sum()
    }

    /// Average the repeats (see [`average_runs`]).
    pub fn averaged(&self) -> AveragedResult {
        average_runs(self.config.clone(), self.runs.clone())
    }

    /// Consume the outcome into an averaged result.
    pub fn into_averaged(self) -> AveragedResult {
        average_runs(self.config, self.runs)
    }
}

/// Builder for executing a scenario: seed, wall-clock watchdog, repeats
/// and an optional flight recording, then [`Runner::run`].
///
/// Fault knobs on the config (steady-state loss, a timed [`FaultPlan`],
/// an event budget) apply to the bottleneck link. Failures — validation,
/// event-budget exhaustion, wall-clock overrun — come back as [`RunError`]
/// instead of aborting the process, so a sweep degrades to a failed cell.
///
/// [`FaultPlan`]: elephants_netsim::FaultPlan
#[derive(Debug, Clone)]
pub struct Runner {
    cfg: ScenarioConfig,
    seed: Option<u64>,
    wall_limit: Duration,
    repeats: u32,
    recording: Option<Recording>,
    check: CheckMode,
}

impl Runner {
    /// A runner for `cfg` with defaults: the config's own base seed, the
    /// default wall limit, one repeat, no recording, and the process-wide
    /// default check mode ([`default_check_mode`], normally off).
    pub fn new(cfg: &ScenarioConfig) -> Self {
        Runner {
            cfg: cfg.clone(),
            seed: None,
            wall_limit: DEFAULT_WALL_LIMIT,
            repeats: 1,
            recording: None,
            check: default_check_mode(),
        }
    }

    /// Override the base seed (default: `cfg.seed`). Repeats use
    /// `seed`, `seed+1`, ….
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Override the per-run wall-clock watchdog.
    pub fn wall_limit(mut self, limit: Duration) -> Self {
        self.wall_limit = limit;
        self
    }

    /// Number of repeats (clamped to at least 1).
    pub fn repeats(mut self, repeats: u32) -> Self {
        self.repeats = repeats.max(1);
        self
    }

    /// Attach a flight recording. Only the base-seed run records.
    pub fn recorder(mut self, recording: Recording) -> Self {
        self.recording = Some(recording);
        self
    }

    /// Override the invariant-checking mode for this runner. In `Strict`
    /// mode a violation panics inside the run (the sweep executor isolates
    /// worker panics into failed cells); in `Audit` mode violations are
    /// counted and returned in [`RunOutcome::check_reports`] without
    /// changing any metric.
    pub fn check(mut self, mode: CheckMode) -> Self {
        self.check = mode;
        self
    }

    /// Execute: `repeats` runs at consecutive seeds, failing fast on the
    /// first error.
    pub fn run(self) -> Result<RunOutcome, RunError> {
        let base = self.seed.unwrap_or(self.cfg.seed);
        let mut runs = Vec::with_capacity(self.repeats as usize);
        let mut check_reports = Vec::new();
        for r in 0..self.repeats.max(1) {
            // Record only the base-seed run: the artifact is for dynamics
            // figures, and repeats exist to average metrics, not figures.
            let rec = if r == 0 { self.recording.as_ref() } else { None };
            let (result, report) =
                run_one(&self.cfg, base + r as u64, self.wall_limit, rec, self.check)?;
            runs.push(result);
            check_reports.extend(report);
        }
        Ok(RunOutcome { config: self.cfg, runs, check_reports })
    }
}

/// Execute one (config, seed) run, optionally recording.
///
/// The simulation is driven in fixed simulated-time slices (which does not
/// perturb the event schedule — `run_until` + `finalize` is byte-identical
/// to a one-shot `run`), checking the event budget and the wall clock
/// between slices.
fn run_one(
    cfg: &ScenarioConfig,
    seed: u64,
    wall_limit: Duration,
    recording: Option<&Recording>,
    check: CheckMode,
) -> Result<(RunResult, Option<CheckReport>), RunError> {
    if let Err(detail) = cfg.validate() {
        return Err(RunError { kind: RunErrorKind::InvalidConfig, detail });
    }
    let bw = cfg.bandwidth();
    let mut topo = cfg
        .topology
        .build(bw, cfg.rtt())
        .map_err(|detail| RunError { kind: RunErrorKind::InvalidConfig, detail })?;
    // Every shaped hop runs the AQM under test at the configured queue
    // length (on the dumbbell that is exactly the old single
    // `set_bottleneck_aqm` call).
    for bn in topo.bottleneck_links().to_vec() {
        topo.set_aqm_on(
            bn,
            build_aqm(cfg.aqm, cfg.queue_bytes(), cfg.bw_bps, cfg.mss, cfg.ecn, seed),
        );
    }
    let mut groups = group_specs(&topo);
    elephants_workload::apply_start_offsets(&mut groups, &cfg.start_offsets());
    let groups = groups;

    // A warmup at or past the end of the run would leave a zero-width
    // measurement window, turning every windowed rate below into a division
    // by zero (inf/NaN goodput). Clamp to "no warmup" and count the incident
    // so sweeps can surface the misconfiguration.
    let warmup = if cfg.duration <= cfg.warmup && !cfg.duration.is_zero() {
        DEGENERATE_WINDOW_RUNS.fetch_add(1, Ordering::Relaxed);
        elephants_netsim::SimDuration::ZERO
    } else {
        cfg.warmup
    };
    let sim_cfg = SimConfig { duration: cfg.duration, warmup, max_events: cfg.max_events };
    let mut sim = Simulator::new(topo, sim_cfg, seed);
    sim.set_check_mode(check);

    if let Some(rec) = recording {
        if rec.flows || rec.queue {
            sim.install_recorder(
                Box::new(FlightRecorder::new()),
                RecorderConfig { interval: rec.interval, flows: rec.flows, queue: rec.queue },
            );
        }
        if rec.events {
            if let Some(bn) = sim.topology().bottleneck_link() {
                sim.topology_mut().link_mut(bn).enable_trace(rec.event_capacity);
            }
        }
    }

    // Loss/faults target the configured bottleneck hop (index 0 — the only
    // hop — on the dumbbell); validate() already bounds-checked the index.
    if let Some(&bn) = sim.topology().bottleneck_links().get(cfg.fault_link as usize) {
        sim.topology_mut().link_mut(bn).loss_model = cfg.loss;
        if !cfg.faults.is_empty() {
            sim.install_fault_plan(bn, &cfg.faults);
        }
    }

    let plan = plan_flows(bw, groups.len() as u32, cfg.flow_scale, seed);
    let rx_cfg =
        if cfg.coalesce { ReceiverConfig::coalesced() } else { ReceiverConfig::default() };
    for (group, starts) in plan.starts.iter().enumerate() {
        let g = &groups[group];
        let kind = if g.cca_slot == 0 { cfg.cca1 } else { cfg.cca2 };
        let (s_node, r_node) = (g.sender, g.receiver);
        for (i, &start) in starts.iter().enumerate() {
            let flow_seed = seed
                .wrapping_mul(0x100000001B3)
                .wrapping_add((group as u64) << 32 | i as u64);
            let cca = build_cca_seeded(kind, cfg.mss, flow_seed);
            let tx = TcpSender::new(
                SenderConfig { mss: cfg.mss, ecn: cfg.ecn, ..Default::default() },
                r_node,
                cca,
            );
            let rx = TcpReceiver::new(rx_cfg, s_node);
            sim.add_flow(s_node, r_node, Box::new(tx), Box::new(rx), start + g.start_offset);
        }
    }

    // Watchdog loop: advance in 64 simulated-time slices, checking the
    // event budget and the wall clock at each boundary. Slicing does not
    // inject events, so the schedule — and therefore every counter in the
    // summary — is identical to a one-shot `sim.run()`.
    let started = Instant::now();
    let end = SimTime::ZERO + cfg.duration;
    let slice = SimDuration::from_nanos((cfg.duration.as_nanos() / 64).max(1));
    let mut t = SimTime::ZERO;
    while t < end {
        t = (t + slice).min(end);
        sim.run_until(t);
        if sim.budget_exhausted() {
            return Err(RunError {
                kind: RunErrorKind::EventBudget,
                detail: format!(
                    "event budget exhausted: {} events processed of max {} with work pending at t={:?}",
                    sim.events_processed(),
                    cfg.max_events,
                    sim.now(),
                ),
            });
        }
        if started.elapsed() > wall_limit {
            return Err(RunError {
                kind: RunErrorKind::WallClock,
                detail: format!(
                    "wall-clock watchdog: exceeded {wall_limit:?} at simulated t={:?} of {:?}",
                    sim.now(),
                    cfg.duration,
                ),
            });
        }
    }
    let summary = sim.finalize();
    let check_report = sim.take_check_report();

    let record_path = match recording {
        Some(rec) => Some(write_record(&mut sim, cfg, seed, rec)?),
        None => None,
    };

    // Per-flow goodput grouped by flow group (sender host).
    let window = summary.window;
    let flow_goodputs: Vec<(u32, f64)> = summary
        .flows
        .iter()
        .map(|f| {
            let group = groups
                .iter()
                .position(|g| g.sender == f.sender_node)
                .expect("flow sender is one of the topology's sender hosts");
            (group as u32, f.window_goodput_bps(window))
        })
        .collect();
    let retransmits: u64 = summary.flows.iter().map(|f| f.sender.retransmits_window).sum();
    let rtos: u64 = summary.flows.iter().map(|f| f.sender.rto_count).sum();
    let drops = summary.bottleneck.aqm.dropped_total() + summary.bottleneck.fault_losses;

    let senders = elephants_metrics::per_sender_goodput(&flow_goodputs);
    let tputs: Vec<f64> = senders.iter().map(|s| s.goodput_bps).collect();
    let jain = elephants_metrics::jain_index(&tputs);
    // Link utilization is measured on the wire (bottleneck bytes serialized
    // inside the window). Receiver goodput would over-count in short runs:
    // the backlog queued during warmup drains into the window, which with a
    // 16 BDP buffer can exceed capacity x window by several percent.
    let window_s = summary.window.as_secs_f64();
    let wire_bps =
        if window_s > 0.0 { summary.bottleneck.bytes_tx_window as f64 * 8.0 / window_s } else { 0.0 };
    let utilization = elephants_metrics::link_utilization(wire_bps, cfg.bw_bps as f64);
    let links: Vec<LinkResult> = summary
        .links
        .iter()
        .map(|l| {
            let link_bps = if window_s > 0.0 {
                l.report.bytes_tx_window as f64 * 8.0 / window_s
            } else {
                0.0
            };
            LinkResult {
                link: l.link.0,
                drops: l.report.aqm.dropped_total() + l.report.fault_losses,
                down_drops: l.report.down_drops,
                peak_queue_pkts: l.report.peak_qlen_pkts,
                utilization: elephants_metrics::link_utilization(link_bps, l.rate_bps as f64),
            }
        })
        .collect();
    let result = RunResult {
        sender_mbps: senders.iter().map(|s| s.goodput_bps / 1e6).collect(),
        jain,
        utilization,
        retransmits,
        rtos,
        drops,
        down_drops: summary.bottleneck.down_drops,
        flows: plan.total(),
        events: summary.events_processed,
        peak_queue_pkts: summary.bottleneck.peak_qlen_pkts,
        fault_events_applied: summary.bottleneck.fault_events_applied,
        record_path,
        links,
    };
    Ok((result, check_report))
}

/// Drain the recorder (and the bottleneck trace ring) out of a finished
/// simulator, assemble the [`FlightRecord`], write it to disk, and emit
/// the SVG dynamics figures. Returns the record path.
fn write_record(
    sim: &mut Simulator,
    cfg: &ScenarioConfig,
    seed: u64,
    rec: &Recording,
) -> Result<String, RunError> {
    let io_err = |what: &str, e: std::io::Error| RunError {
        kind: RunErrorKind::Io,
        detail: format!("{what}: {e}"),
    };

    // An events-only recording never installed a live recorder on the
    // simulator; start from an empty one and fill it from the ring.
    let mut recorder = match sim.take_recorder() {
        Some(mut boxed) => std::mem::take(
            boxed
                .as_any_mut()
                .downcast_mut::<FlightRecorder>()
                .expect("Runner installs a FlightRecorder"),
        ),
        None => FlightRecorder::new(),
    };
    if rec.events {
        if let Some(bn) = sim.topology().bottleneck_link() {
            if let Some(ring) = sim.topology_mut().link_mut(bn).take_trace() {
                use elephants_netsim::Recorder;
                for e in ring.events() {
                    recorder.on_trace_event(e);
                }
                if ring.truncated() > 0 {
                    recorder.on_trace_truncated(ring.truncated());
                }
            }
        }
    }

    let record = recorder.into_record(cfg.label(), seed, rec.interval);
    std::fs::create_dir_all(&rec.out_dir)
        .map_err(|e| io_err("creating record directory", e))?;
    let stem = cfg.cache_key(seed);
    let path = rec.out_dir.join(format!("{stem}.flight.json"));
    std::fs::write(&path, record.to_json_string())
        .map_err(|e| io_err("writing flight record", e))?;
    if rec.svg {
        emit_dynamics_figures(&record, &rec.out_dir, &stem)
            .map_err(|e| io_err("writing dynamics figure", e))?;
    }
    Ok(path.display().to_string())
}

/// Write the paper-style dynamics figures for a record: cwnd-vs-time (one
/// series per flow) and, when queue samples exist, queue-depth-vs-time.
pub fn emit_dynamics_figures(
    record: &FlightRecord,
    out_dir: &std::path::Path,
    stem: &str,
) -> std::io::Result<Vec<PathBuf>> {
    use crate::svg::{write_chart, ChartSpec, Series};
    let mut written = Vec::new();
    let flows = record.flow_ids();
    if !flows.is_empty() {
        let series: Vec<Series> = flows
            .iter()
            .map(|&f| Series {
                name: format!("flow {f}"),
                points: record
                    .cwnd_series(f)
                    .into_iter()
                    .map(|(t, cwnd)| (t, cwnd / 1e3))
                    .collect(),
            })
            .collect();
        let spec = ChartSpec {
            title: format!("cwnd dynamics — {}", record.label),
            x_label: "time (s)".to_string(),
            y_label: "cwnd (kB)".to_string(),
            ..ChartSpec::default()
        };
        let path = out_dir.join(format!("{stem}.cwnd.svg"));
        write_chart(&path, &spec, &series)?;
        written.push(path);
    }
    if !record.queue_samples.is_empty() {
        let series = [Series {
            name: "bottleneck queue".to_string(),
            points: record.queue_series(),
        }];
        let spec = ChartSpec {
            title: format!("queue dynamics — {}", record.label),
            x_label: "time (s)".to_string(),
            y_label: "backlog (pkts)".to_string(),
            ..ChartSpec::default()
        };
        let path = out_dir.join(format!("{stem}.queue.svg"));
        write_chart(&path, &spec, &series)?;
        written.push(path);
    }
    Ok(written)
}

/// Averages over repeated runs of one scenario.
#[derive(Debug, Clone)]
pub struct AveragedResult {
    /// The scenario.
    pub config: ScenarioConfig,
    /// Mean per-sender goodput (Mbps).
    pub sender_mbps: Vec<f64>,
    /// Mean Jain index.
    pub jain: f64,
    /// Mean utilization.
    pub utilization: f64,
    /// Mean retransmissions per run.
    pub retransmits: f64,
    /// Total RTOs across repeats.
    pub rtos: u64,
    /// Individual run results.
    pub runs: Vec<RunResult>,
}

/// Average a set of per-seed runs.
pub fn average_runs(config: ScenarioConfig, runs: Vec<RunResult>) -> AveragedResult {
    assert!(!runs.is_empty());
    let n = runs.len() as f64;
    let n_senders = runs[0].sender_mbps.len();
    // Silently padding a short vector with zeros would drag the mean down
    // and mask a structural mismatch between runs of one scenario.
    for (i, r) in runs.iter().enumerate() {
        assert_eq!(
            r.sender_mbps.len(),
            n_senders,
            "run {i} reports {} senders, run 0 reports {n_senders}: cannot average",
            r.sender_mbps.len(),
        );
    }
    let sender_mbps = (0..n_senders)
        .map(|i| runs.iter().map(|r| r.sender_mbps[i]).sum::<f64>() / n)
        .collect();
    AveragedResult {
        config,
        sender_mbps,
        jain: runs.iter().map(|r| r.jain).sum::<f64>() / n,
        utilization: runs.iter().map(|r| r.utilization).sum::<f64>() / n,
        retransmits: runs.iter().map(|r| r.retransmits as f64).sum::<f64>() / n,
        rtos: runs.iter().map(|r| r.rtos).sum(),
        runs,
    }
}

/// Convenience used by tests: first flow's start time for the plan.
pub fn first_start(cfg: &ScenarioConfig, seed: u64) -> SimTime {
    plan_flows(cfg.bandwidth(), cfg.topology.n_groups() as u32, cfg.flow_scale, seed).starts[0][0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::RunOptions;
    use elephants_aqm::AqmKind;
    use elephants_cca::CcaKind;

    fn quick_cfg(cca1: CcaKind, cca2: CcaKind, aqm: AqmKind, q: f64, bw: u64) -> ScenarioConfig {
        ScenarioConfig::new(cca1, cca2, aqm, q, bw, &RunOptions::quick())
    }

    fn run_seeded(cfg: &ScenarioConfig, seed: u64) -> RunResult {
        Runner::new(cfg).seed(seed).run().unwrap().into_first()
    }

    #[test]
    fn cubic_intra_100m_fifo_is_fair_and_full() {
        let cfg = quick_cfg(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 2.0, 100_000_000);
        let r = run_seeded(&cfg, 1);
        assert_eq!(r.flows, 2);
        assert!(r.utilization > 0.85, "φ = {}", r.utilization);
        assert!(r.jain > 0.8, "J = {}", r.jain);
        assert!(r.record_path.is_none(), "no recorder attached");
    }

    #[test]
    fn runner_is_deterministic() {
        let cfg = quick_cfg(CcaKind::BbrV1, CcaKind::Cubic, AqmKind::Fifo, 1.0, 100_000_000);
        let a = run_seeded(&cfg, 7);
        let b = run_seeded(&cfg, 7);
        assert_eq!(a.events, b.events);
        assert_eq!(a.sender_mbps, b.sender_mbps);
        assert_eq!(a.retransmits, b.retransmits);
    }

    #[test]
    fn averaging_is_elementwise() {
        let cfg = quick_cfg(CcaKind::Reno, CcaKind::Cubic, AqmKind::Fifo, 1.0, 100_000_000);
        let avg = Runner::new(&cfg).repeats(2).run().unwrap().into_averaged();
        assert_eq!(avg.runs.len(), 2);
        let expect0 = (avg.runs[0].sender_mbps[0] + avg.runs[1].sender_mbps[0]) / 2.0;
        assert!((avg.sender_mbps[0] - expect0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_window_is_clamped_not_inf() {
        let mut cfg = quick_cfg(CcaKind::Reno, CcaKind::Reno, AqmKind::Fifo, 1.0, 100_000_000);
        cfg.warmup = cfg.duration; // zero-width window as configured
        let before = degenerate_window_runs();
        let r = run_seeded(&cfg, 3);
        assert!(degenerate_window_runs() > before, "clamp must be counted");
        assert!(r.utilization.is_finite(), "φ = {}", r.utilization);
        assert!(r.jain.is_finite(), "J = {}", r.jain);
        assert!(r.sender_mbps.iter().all(|m| m.is_finite()), "{:?}", r.sender_mbps);
        // With the warmup clamped away, the whole run is the window.
        assert!(r.utilization > 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot average")]
    fn averaging_rejects_mismatched_sender_vectors() {
        let cfg = quick_cfg(CcaKind::Reno, CcaKind::Cubic, AqmKind::Fifo, 1.0, 100_000_000);
        let a = run_seeded(&cfg, 1);
        let mut b = a.clone();
        b.sender_mbps.pop();
        average_runs(cfg, vec![a, b]);
    }

    #[test]
    fn flow_counts_follow_table2() {
        let cfg = quick_cfg(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 1.0, 500_000_000);
        let r = run_seeded(&cfg, 1);
        assert_eq!(r.flows, 10);
    }

    #[test]
    fn recording_spec_parses_cli_spelling() {
        let rec = Recording::parse("flows").unwrap();
        assert!(rec.flows && !rec.queue && !rec.events);
        let rec = Recording::parse("flows,queue,events").unwrap();
        assert!(rec.flows && rec.queue && rec.events);
        let rec = Recording::parse("queue").unwrap();
        assert!(!rec.flows && rec.queue);
        assert!(Recording::parse("flows,bogus").is_err());
        assert!(Recording::parse("").is_err());
    }

    #[test]
    fn base_seed_run_is_independent_of_repeat_count() {
        // What the deleted run_scenario/run_averaged shims used to assert:
        // a repeats(n) outcome's base-seed run is byte-identical to a
        // standalone single run at the same seed, and averaging one run is
        // the identity.
        let cfg = quick_cfg(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 1.0, 100_000_000);
        let single = run_seeded(&cfg, 5);
        let repeated = Runner::new(&cfg).seed(5).repeats(2).run().unwrap();
        assert_eq!(
            single.metrics().to_json_string(),
            repeated.first().metrics().to_json_string()
        );
        assert_eq!(single.events, repeated.first().events);
        let avg = Runner::new(&cfg).seed(5).run().unwrap().into_averaged();
        assert_eq!(avg.runs.len(), 1);
        assert!((avg.jain - single.jain).abs() < 1e-15);
        assert_eq!(avg.sender_mbps, single.sender_mbps);
    }

    #[test]
    fn multi_dumbbell_short_rtt_group_runs_and_reports_groups() {
        use elephants_netsim::TopologySpec;
        let mut cfg = quick_cfg(CcaKind::BbrV1, CcaKind::Cubic, AqmKind::Fifo, 2.0, 100_000_000);
        cfg.topology = TopologySpec::MultiDumbbell { rtts_ms: vec![31, 124] };
        let r = run_seeded(&cfg, 3);
        assert_eq!(r.sender_mbps.len(), 2, "one goodput entry per group");
        assert_eq!(r.links.len(), 1, "multi-dumbbell has one shared bottleneck");
        assert!(r.utilization > 0.5, "φ = {}", r.utilization);
        assert!(r.sender_mbps.iter().all(|&m| m > 0.0), "{:?}", r.sender_mbps);
    }

    #[test]
    fn parking_lot_reports_one_link_result_per_hop() {
        use elephants_netsim::{CheckMode, TopologySpec};
        let mut cfg = quick_cfg(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 2.0, 100_000_000);
        cfg.topology = TopologySpec::ParkingLot { hops: 3 };
        let out = Runner::new(&cfg).seed(2).check(CheckMode::Strict).run().unwrap();
        assert_eq!(out.check_violations(), 0, "strict parking-lot run must be clean");
        let r = out.first();
        assert_eq!(r.sender_mbps.len(), 4, "K+1 groups on a K-hop parking lot");
        assert_eq!(r.links.len(), 3, "one diagnostic entry per shaped hop");
        assert_eq!(r.drops, r.links[0].drops, "scalars mirror the primary hop");
        assert_eq!(r.peak_queue_pkts, r.links[0].peak_queue_pkts);
        // The long path crosses every hop, so each hop carries traffic.
        assert!(r.links.iter().all(|l| l.utilization > 0.0), "{:?}", r.links);
    }

    #[test]
    fn audit_checking_does_not_perturb_metrics_and_reports_clean() {
        use elephants_netsim::CheckMode;
        let cfg = quick_cfg(CcaKind::BbrV1, CcaKind::Cubic, AqmKind::Red, 2.0, 100_000_000);
        let plain = Runner::new(&cfg).seed(11).run().unwrap();
        let audited = Runner::new(&cfg).seed(11).check(CheckMode::Audit).run().unwrap();
        // The checker is a pure observer: paper metrics and the event count
        // must be byte-identical with and without it.
        assert_eq!(
            plain.first().metrics().to_json_string(),
            audited.first().metrics().to_json_string(),
            "audit checking must not perturb run metrics"
        );
        assert_eq!(plain.first().events, audited.first().events);
        assert!(plain.check_reports.is_empty(), "no report when checking is off");
        assert_eq!(audited.check_reports.len(), 1);
        let report = &audited.check_reports[0];
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.events_checked > 0, "checker must have observed events");
    }

    #[test]
    fn strict_checking_passes_the_scenario_grid_sampler() {
        use elephants_netsim::CheckMode;
        // One cell per AQM keeps this debug-mode test quick; the release
        // check-smoke lane in scripts/ci.sh covers the full CCA x AQM grid.
        for aqm in [AqmKind::Fifo, AqmKind::Red, AqmKind::FqCodel, AqmKind::Codel, AqmKind::Pie] {
            let cfg = quick_cfg(CcaKind::BbrV1, CcaKind::Cubic, aqm, 2.0, 100_000_000);
            let out = Runner::new(&cfg).seed(5).check(CheckMode::Strict).run().unwrap();
            assert_eq!(out.check_violations(), 0, "{aqm}: strict run must be clean");
            assert_eq!(out.check_reports.len(), 1);
        }
    }

    #[test]
    fn default_check_mode_round_trips_through_the_global() {
        use elephants_netsim::CheckMode;
        // Serialize against other tests touching the global by restoring it.
        let before = default_check_mode();
        set_default_check_mode(CheckMode::Audit);
        assert_eq!(default_check_mode(), CheckMode::Audit);
        let cfg = quick_cfg(CcaKind::Reno, CcaKind::Reno, AqmKind::Fifo, 1.0, 100_000_000);
        assert_eq!(Runner::new(&cfg).check, CheckMode::Audit);
        set_default_check_mode(before);
    }

    #[test]
    fn unwritable_record_dir_surfaces_io_error_not_panic() {
        let cfg = quick_cfg(CcaKind::Reno, CcaKind::Reno, AqmKind::Fifo, 1.0, 100_000_000);
        // A regular file where the output directory should go: create_dir_all
        // fails with NotADirectory for every caller, root included (the
        // permission-bit approach is a no-op when tests run as root).
        let blocker =
            std::env::temp_dir().join(format!("elephants-io-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let err = Runner::new(&cfg)
            .seed(1)
            .recorder(Recording::flows_only().out_dir(blocker.join("records")).svg(true))
            .run()
            .expect_err("writing into a non-directory must fail");
        assert_eq!(err.kind, RunErrorKind::Io, "got {err}");
        assert!(err.is_retryable(), "Io failures are classified retryable");
        std::fs::remove_file(&blocker).ok();
    }

    #[test]
    fn fault_plan_entirely_past_duration_applies_zero_events() {
        use elephants_netsim::{FaultAction, FaultPlan};
        let mut cfg = quick_cfg(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 1.0, 100_000_000);
        let after = cfg.duration + SimDuration::from_secs(1);
        cfg.faults = FaultPlan::none()
            .with(after, FaultAction::LinkDown)
            .with(after + SimDuration::from_millis(100), FaultAction::LinkUp);
        assert!(cfg.validate().is_ok(), "post-duration events are valid config");
        let baseline = {
            let mut c = cfg.clone();
            c.faults = FaultPlan::none();
            run_seeded(&c, 4)
        };
        let r = run_seeded(&cfg, 4);
        assert_eq!(r.fault_events_applied, 0, "no event inside the run may fire");
        assert_eq!(r.down_drops, 0);
        // A plan that never fires must not perturb the run at all.
        assert_eq!(r.metrics().to_json_string(), baseline.metrics().to_json_string());
    }

    #[test]
    fn in_run_fault_plan_reports_applied_events() {
        use elephants_netsim::{FaultAction, FaultPlan};
        let mut cfg = quick_cfg(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 1.0, 100_000_000);
        let mid = SimDuration::from_millis(500);
        cfg.faults = FaultPlan::none()
            .with(mid, FaultAction::LinkDown)
            .with(mid + SimDuration::from_millis(200), FaultAction::LinkUp);
        let r = run_seeded(&cfg, 4);
        assert_eq!(r.fault_events_applied, 2, "both in-run events must fire");
    }

    #[test]
    fn recording_writes_flight_record_without_perturbing_metrics() {
        let cfg = quick_cfg(CcaKind::BbrV1, CcaKind::Cubic, AqmKind::Fifo, 2.0, 100_000_000);
        let dir = std::env::temp_dir().join(format!("elephants-rec-{}", std::process::id()));
        let plain = run_seeded(&cfg, 9);
        let recorded = Runner::new(&cfg)
            .seed(9)
            .recorder(
                Recording::parse("flows,queue,events").unwrap().out_dir(&dir).svg(true),
            )
            .run()
            .unwrap()
            .into_first();
        // The recorder is a pure observer: the paper metrics and the event
        // count must be byte-identical with and without it.
        assert_eq!(
            plain.metrics().to_json_string(),
            recorded.metrics().to_json_string(),
            "recording must not perturb run metrics"
        );
        assert_eq!(plain.events, recorded.events, "sample ticks must not count as events");

        let path = recorded.record_path.as_deref().expect("record path set");
        let json = std::fs::read_to_string(path).unwrap();
        let record = FlightRecord::parse(&json).unwrap();
        assert_eq!(record.seed, 9);
        assert!(record.flow_ids().len() >= 2, "both senders sampled");
        assert!(!record.queue_samples.is_empty(), "queue channel recorded");
        assert!(
            !record.events.is_empty() || record.events_truncated > 0,
            "event trace captured"
        );
        let cwnd_svg = dir.join(format!("{}.cwnd.svg", cfg.cache_key(9)));
        assert!(cwnd_svg.exists(), "cwnd dynamics figure written");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recorded_samples_carry_monotone_delivered_counters() {
        let cfg = quick_cfg(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 2.0, 100_000_000);
        let dir = std::env::temp_dir().join(format!("elephants-deliv-{}", std::process::id()));
        let outcome = Runner::new(&cfg)
            .seed(4)
            .recorder(Recording::flows_only().out_dir(&dir).svg(false))
            .run()
            .unwrap();
        let record = outcome.load_record().expect("record written and parseable");
        for flow in record.flow_ids() {
            let series = record.delivered_series(flow);
            assert!(
                series.windows(2).all(|w| w[1].1 >= w[0].1),
                "delivered_bytes must be cumulative (flow {flow})"
            );
            assert!(
                series.last().unwrap().1 > 0.0,
                "flow {flow} delivered nothing over the whole run"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn start_offset_delays_the_group_and_analysis_sees_the_join() {
        let base = quick_cfg(CcaKind::Cubic, CcaKind::Cubic, AqmKind::Fifo, 2.0, 100_000_000);
        let offset_s = 3.0;
        let mut staggered = base.clone();
        staggered.start_offset_ms = vec![0, (offset_s * 1e3) as u64];
        let dir = std::env::temp_dir().join(format!("elephants-stag-{}", std::process::id()));
        let outcome = Runner::new(&staggered)
            .seed(2)
            .recorder(Recording::flows_only().out_dir(&dir).svg(false))
            .run()
            .unwrap();
        let d = outcome.analysis(0.5).expect("dynamics from the record");
        assert_eq!(outcome.flow_groups(), vec![0, 1]);
        // Group 1 must be silent before its join and active after it.
        let joiner = d.share_series(1);
        let pre: f64 = joiner.iter().filter(|p| p.0 <= offset_s).map(|p| p.1).sum();
        assert_eq!(pre, 0.0, "late group moved bytes before its offset");
        let post_active = joiner.iter().any(|p| p.0 > offset_s + 1.0 && p.1 > 0.05);
        assert!(post_active, "late group never became active: {joiner:?}");
        // The synchronized run is not perturbed: distinct cache keys keep
        // the artifacts apart, and the offset run really differs.
        assert_ne!(base.cache_key(2), staggered.cache_key(2));
        let plain = run_seeded(&base, 2);
        let stag = outcome.into_first();
        assert!(
            stag.sender_mbps[1] < plain.sender_mbps[1],
            "a 3s-late group must move less than a synchronized one"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
