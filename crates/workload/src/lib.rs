//! # elephants-workload
//!
//! Reproduces the paper's iperf3 traffic generation (Table 2): per
//! bottleneck bandwidth, a number of processes × parallel streams per
//! sender node, all running elephant flows for the duration of the test.
//!
//! | Bottleneck BW | total flows | iperf3 configuration |
//! |---|---|---|
//! | 100 Mbps | 2 | 1 process/node × 1 stream |
//! | 500 Mbps | 10 | 5 processes/node × 1 stream |
//! | 1 Gbps | 20 | 10 processes/node × 1 stream |
//! | 10 Gbps | 200 | 10 processes/node × 10 streams |
//! | 25 Gbps | 500 | 25 processes/node × 10 streams |

use elephants_netsim::{Bandwidth, NodeId, SimDuration, SimTime, Topology};
use elephants_json::impl_json_struct;
use elephants_netsim::{RngExt, SeedableRng, SmallRng};

/// An iperf3-style flow group on one sender node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IperfConfig {
    /// Number of iperf3 processes on the node.
    pub processes: u32,
    /// Parallel streams (`-P`) per process.
    pub streams: u32,
}

impl_json_struct!(IperfConfig { processes, streams });

impl IperfConfig {
    /// Flows contributed by this node.
    pub fn flows(&self) -> u32 {
        self.processes * self.streams
    }
}

/// The paper's Table 2 mapping from bottleneck bandwidth to per-node iperf3
/// configuration. Bandwidths between the paper's grid points get the nearest
/// scaling (1 flow per ~50 Mbps of capacity, split over two nodes).
pub fn table2_config(bw: Bandwidth) -> IperfConfig {
    match bw.as_bps() {
        100_000_000 => IperfConfig { processes: 1, streams: 1 },
        500_000_000 => IperfConfig { processes: 5, streams: 1 },
        1_000_000_000 => IperfConfig { processes: 10, streams: 1 },
        10_000_000_000 => IperfConfig { processes: 10, streams: 10 },
        25_000_000_000 => IperfConfig { processes: 25, streams: 10 },
        bps => {
            // ~1 flow per 50 Mbps per node, in [1, 250].
            let flows = ((bps / 2) / 50_000_000).clamp(1, 250) as u32;
            IperfConfig { processes: flows, streams: 1 }
        }
    }
}

/// Paper Table 2 total flow count across both sender nodes.
pub fn table2_total_flows(bw: Bandwidth) -> u32 {
    2 * table2_config(bw).flows()
}

/// A planned set of flows for one experiment.
#[derive(Debug, Clone)]
pub struct FlowPlan {
    /// Flows per sender node.
    pub per_sender: u32,
    /// Start time of each flow, indexed `[sender][flow]`.
    pub starts: Vec<Vec<SimTime>>,
}

impl_json_struct!(FlowPlan { per_sender, starts });

impl FlowPlan {
    /// Total flows across all senders.
    pub fn total(&self) -> u32 {
        self.starts.iter().map(|v| v.len() as u32).sum()
    }
}

/// One flow group's route through a topology: which hosts its flows run
/// between, which CCA slot they use, and the path RTT they will see.
///
/// A "group" is one (sender host, receiver host) pair — the topology-aware
/// generalization of the paper's two dumbbell sender nodes. Group 0 carries
/// the scenario's first congestion-control algorithm (`cca1`), every other
/// group the second (`cca2`), matching the dumbbell convention where sender
/// 0 runs the algorithm under test against a CUBIC competitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupSpec {
    /// Group index (position in the topology's sender-host list).
    pub group: u32,
    /// The group's sender host.
    pub sender: NodeId,
    /// The group's receiver host.
    pub receiver: NodeId,
    /// CCA assignment: `0` = scenario `cca1`, `1` = scenario `cca2`.
    pub cca_slot: u8,
    /// Two-way propagation delay along the group's routed path.
    pub rtt: SimDuration,
    /// Join delay added to every flow start in this group (ZERO for the
    /// paper's synchronized start; nonzero makes the group a late joiner).
    pub start_offset: SimDuration,
}

/// Derive the flow groups of a built topology: one per (sender, receiver)
/// host pair, with per-group path RTTs computed from the route tables.
///
/// Panics if the topology's sender/receiver host lists disagree in length
/// or a pair is unroutable — both indicate a malformed topology builder,
/// not a runtime condition.
pub fn group_specs(topo: &Topology) -> Vec<GroupSpec> {
    let senders = topo.sender_hosts();
    let receivers = topo.receiver_hosts();
    assert_eq!(senders.len(), receivers.len(), "sender/receiver host lists must pair up");
    senders
        .iter()
        .zip(receivers.iter())
        .enumerate()
        .map(|(g, (&s, &r))| GroupSpec {
            group: g as u32,
            sender: s,
            receiver: r,
            cca_slot: if g == 0 { 0 } else { 1 },
            rtt: topo
                .path_rtt(s, r)
                .unwrap_or_else(|| panic!("group {g} ({s:?} -> {r:?}) is unroutable")),
            start_offset: SimDuration::ZERO,
        })
        .collect()
}

/// Apply per-group start offsets to a group list (staggered-join
/// scenarios). `offsets` may be shorter than the group list — remaining
/// groups keep a ZERO offset; it must not be longer.
pub fn apply_start_offsets(groups: &mut [GroupSpec], offsets: &[SimDuration]) {
    assert!(
        offsets.len() <= groups.len(),
        "{} start offsets for {} groups",
        offsets.len(),
        groups.len()
    );
    for (g, &off) in groups.iter_mut().zip(offsets.iter()) {
        g.start_offset = off;
    }
}

/// Build the flow plan for a scenario.
///
/// * `bw` — bottleneck bandwidth (drives Table 2 scaling).
/// * `n_senders` — sender nodes (2 in the paper).
/// * `flow_scale` — fraction of the paper's flow count to instantiate
///   (1.0 = full Table 2; smaller for quick runs). At least one flow per
///   sender always survives.
/// * `seed` — start-jitter randomness.
///
/// iperf3 processes are launched back-to-back by the orchestration notebook,
/// so flow starts are staggered by a few milliseconds of jitter rather than
/// synchronized to the nanosecond.
pub fn plan_flows(bw: Bandwidth, n_senders: u32, flow_scale: f64, seed: u64) -> FlowPlan {
    assert!(n_senders >= 1);
    assert!(flow_scale > 0.0 && flow_scale <= 1.0, "flow_scale must be in (0,1]");
    let full = table2_config(bw).flows();
    let per_sender = ((full as f64 * flow_scale).round() as u32).max(1);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xE1E9_4A17_5EED_0001);
    let starts = (0..n_senders)
        .map(|_| {
            (0..per_sender)
                .map(|i| {
                    let stagger = SimDuration::from_millis(2) * i as u64;
                    let jitter = SimDuration::from_nanos(rng.random_range(0..3_000_000u64));
                    SimTime::ZERO + stagger + jitter
                })
                .collect()
        })
        .collect();
    FlowPlan { per_sender, starts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_rows() {
        assert_eq!(table2_total_flows(Bandwidth::from_mbps(100)), 2);
        assert_eq!(table2_total_flows(Bandwidth::from_mbps(500)), 10);
        assert_eq!(table2_total_flows(Bandwidth::from_gbps(1)), 20);
        assert_eq!(table2_total_flows(Bandwidth::from_gbps(10)), 200);
        assert_eq!(table2_total_flows(Bandwidth::from_gbps(25)), 500);
    }

    #[test]
    fn table2_process_stream_split() {
        let c = table2_config(Bandwidth::from_gbps(25));
        assert_eq!((c.processes, c.streams), (25, 10));
        let c = table2_config(Bandwidth::from_mbps(500));
        assert_eq!((c.processes, c.streams), (5, 1));
    }

    #[test]
    fn off_grid_bandwidths_interpolate() {
        let c = table2_config(Bandwidth::from_mbps(200));
        assert!(c.flows() >= 1 && c.flows() <= 4, "{c:?}");
        let c = table2_config(Bandwidth::from_gbps(100));
        assert_eq!(c.flows(), 250, "capped at 250 per node");
    }

    #[test]
    fn plan_respects_scale_and_floor() {
        let p = plan_flows(Bandwidth::from_gbps(25), 2, 1.0, 1);
        assert_eq!(p.total(), 500);
        let p = plan_flows(Bandwidth::from_gbps(25), 2, 0.1, 1);
        assert_eq!(p.total(), 50);
        let p = plan_flows(Bandwidth::from_mbps(100), 2, 0.01, 1);
        assert_eq!(p.total(), 2, "at least one flow per sender");
    }

    #[test]
    fn group_specs_on_dumbbell_match_paper_convention() {
        let topo = elephants_netsim::DumbbellSpec::paper(Bandwidth::from_mbps(100)).build();
        let groups = group_specs(&topo);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].cca_slot, 0, "group 0 runs cca1");
        assert_eq!(groups[1].cca_slot, 1, "competitor group runs cca2");
        for g in &groups {
            assert_eq!(g.rtt, topo.base_rtt(), "dumbbell paths are symmetric");
        }
        assert_ne!(groups[0].sender, groups[1].sender);
    }

    #[test]
    fn group_specs_see_heterogeneous_rtts() {
        let spec = elephants_netsim::MultiDumbbellSpec {
            bw: Bandwidth::from_mbps(100),
            rtts: vec![SimDuration::from_millis(31), SimDuration::from_millis(124)],
        };
        let topo = spec.build().unwrap();
        let groups = group_specs(&topo);
        assert_eq!(groups[0].rtt, SimDuration::from_millis(31));
        assert_eq!(groups[1].rtt, SimDuration::from_millis(124));
    }

    #[test]
    fn start_offsets_apply_prefix_and_default_zero() {
        let topo = elephants_netsim::DumbbellSpec::paper(Bandwidth::from_mbps(100)).build();
        let mut groups = group_specs(&topo);
        assert!(groups.iter().all(|g| g.start_offset == SimDuration::ZERO));
        apply_start_offsets(&mut groups, &[SimDuration::from_secs(3)]);
        assert_eq!(groups[0].start_offset, SimDuration::from_secs(3));
        assert_eq!(groups[1].start_offset, SimDuration::ZERO, "unlisted groups stay at zero");
    }

    #[test]
    #[should_panic]
    fn start_offsets_reject_excess_entries() {
        let topo = elephants_netsim::DumbbellSpec::paper(Bandwidth::from_mbps(100)).build();
        let mut groups = group_specs(&topo);
        apply_start_offsets(&mut groups, &[SimDuration::ZERO; 3]);
    }

    #[test]
    fn starts_are_staggered_and_deterministic() {
        let a = plan_flows(Bandwidth::from_gbps(1), 2, 1.0, 42);
        let b = plan_flows(Bandwidth::from_gbps(1), 2, 1.0, 42);
        assert_eq!(a.starts, b.starts);
        let c = plan_flows(Bandwidth::from_gbps(1), 2, 1.0, 43);
        assert_ne!(a.starts, c.starts, "different seed, different jitter");
        // Stagger grows with the flow index.
        let s = &a.starts[0];
        assert!(s[9] > s[0]);
        assert!(s[9].since(s[0]) < SimDuration::from_millis(100));
    }
}
