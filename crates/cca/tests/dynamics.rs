//! Closed-loop dynamics tests: drive each CCA with a synthetic
//! fixed-capacity bottleneck model (no simulator) and check the
//! steady-state behaviours the paper's analysis relies on.
//!
//! The loop models one flow on a `capacity`-limited path with a
//! `buffer`-packet queue and a 62 ms base RTT: each "round" delivers
//! min(cwnd, capacity + queue) packets, queue occupancy inflates the RTT
//! sample, and overflowing the buffer produces a loss event.

use elephants_cca::{
    build_cca_seeded, AckEvent, CcaKind, CongestionControl, LossEvent,
};
use elephants_netsim::{SimDuration, SimTime};

const MSS: u64 = 1000;
const BASE_RTT_MS: u64 = 62;

struct Loop {
    cca: Box<dyn CongestionControl>,
    capacity_pkts: u64,
    buffer_pkts: u64,
    now_ms: u64,
    delivered: u64,
    losses: u64,
    rtt_ms: u64,
}

impl Loop {
    fn new(kind: CcaKind, capacity_pkts: u64, buffer_pkts: u64) -> Self {
        Loop {
            cca: build_cca_seeded(kind, MSS as u32, 3),
            capacity_pkts,
            buffer_pkts,
            now_ms: 0,
            delivered: 0,
            losses: 0,
            rtt_ms: BASE_RTT_MS,
        }
    }

    /// Advance one round trip; returns the delivered packet count.
    fn round(&mut self) -> u64 {
        let cwnd_pkts = (self.cca.cwnd() / MSS).max(1);
        let pipe = self.capacity_pkts;
        let queued = cwnd_pkts.saturating_sub(pipe);
        self.rtt_ms = BASE_RTT_MS + queued.min(self.buffer_pkts) * BASE_RTT_MS / pipe.max(1);
        self.now_ms += self.rtt_ms;

        if queued > self.buffer_pkts {
            // Overflow: loss event, deliver what fits.
            self.losses += queued - self.buffer_pkts;
            let ev = LossEvent {
                now: SimTime::ZERO + SimDuration::from_millis(self.now_ms),
                inflight: cwnd_pkts * MSS,
                delivered: self.delivered * MSS,
                min_rtt: SimDuration::from_millis(BASE_RTT_MS),
                max_rtt_epoch: SimDuration::from_millis(self.rtt_ms),
            };
            self.cca.on_loss_event(&ev);
        }
        let delivered_now = cwnd_pkts.min(pipe + self.buffer_pkts);
        self.delivered += delivered_now;

        // Feed the round's ACKs in a few batches (8 per round).
        let batches = 8u64;
        for b in 0..batches {
            let acked = delivered_now / batches
                + if b < delivered_now % batches { 1 } else { 0 };
            if acked == 0 {
                continue;
            }
            let rate_bps = delivered_now * MSS * 8 * 1000 / self.rtt_ms.max(1);
            let ev = AckEvent {
                now: SimTime::ZERO + SimDuration::from_millis(self.now_ms),
                rtt: SimDuration::from_millis(self.rtt_ms),
                min_rtt: SimDuration::from_millis(BASE_RTT_MS),
                srtt: SimDuration::from_millis(self.rtt_ms),
                newly_acked: acked * MSS,
                newly_lost: 0,
                inflight: cwnd_pkts * MSS / 2,
                delivery_rate: Some(rate_bps),
                app_limited: false,
                delivered: self.delivered * MSS,
                round_start: b == 0,
                ecn_ce: false,
                is_app_limited_now: false,
            };
            self.cca.on_ack(&ev, false);
        }
        delivered_now
    }

    /// Run `n` rounds; return mean delivered per round over the last half.
    fn run(&mut self, n: usize) -> f64 {
        let mut tail = 0u64;
        let half = n / 2;
        for i in 0..n {
            let d = self.round();
            if i >= half {
                tail += d;
            }
        }
        tail as f64 / (n - half) as f64
    }
}

#[test]
fn every_cca_reaches_high_mean_utilization_with_bdp_buffer() {
    for kind in CcaKind::ALL {
        let mut l = Loop::new(kind, 87, 87); // 100 Mbps-ish path, 1 BDP buffer
        let mean = l.run(400);
        assert!(
            mean > 0.85 * 87.0,
            "{}: mean delivered {mean:.1} pkts/round (want > {:.1})",
            kind.name(),
            0.85 * 87.0
        );
    }
}

#[test]
fn loss_based_ccas_oscillate_bbr_does_not() {
    // Compare the central cwnd band (10th..90th percentile ratio): CUBIC's
    // sawtooth spans a wide band, BBR's steady-state cwnd is pinned to
    // gain x BDP (ProbeRTT dips fall outside the percentile band).
    let band_ratio = |kind: CcaKind| {
        let mut l = Loop::new(kind, 87, 43);
        l.run(200); // warm up
        let mut samples = vec![];
        for _ in 0..200 {
            l.round();
            samples.push(l.cca.cwnd() as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p10 = samples[samples.len() / 10];
        let p90 = samples[samples.len() * 9 / 10];
        p90 / p10
    };
    let cubic_band = band_ratio(CcaKind::Cubic);
    let bbr_band = band_ratio(CcaKind::BbrV1);
    assert!(cubic_band > 1.05, "CUBIC must sawtooth, band={cubic_band:.3}");
    assert!(
        bbr_band < cubic_band,
        "BBR must be steadier: bbr={bbr_band:.3} cubic={cubic_band:.3}"
    );
}

#[test]
fn cubic_recovers_to_wmax_within_k_seconds() {
    let mut l = Loop::new(CcaKind::Cubic, 87, 87);
    l.run(300); // reach steady sawtooth
    // Find the next loss, then measure time to regain W_max.
    let mut w_max = 0u64;
    for _ in 0..200 {
        let before = l.cca.cwnd();
        let losses_before = l.losses;
        l.round();
        if l.losses > losses_before {
            w_max = before;
            break;
        }
    }
    assert!(w_max > 0, "no loss observed in 200 rounds");
    let cut = l.cca.cwnd();
    assert!(cut < w_max);
    // K = cbrt(w_max_seg * 0.3 / 0.4) seconds; allow 2x slack.
    let w_max_seg = (w_max / MSS) as f64;
    let k_secs = (w_max_seg * 0.3 / 0.4).cbrt();
    let start_ms = l.now_ms;
    let mut recovered = false;
    while l.now_ms < start_ms + (3.0 * k_secs * 1000.0) as u64 {
        l.round();
        if l.cca.cwnd() >= w_max * 95 / 100 {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "CUBIC failed to re-approach W_max within 3K");
}

#[test]
fn htcp_beta_adapts_to_queue_depth() {
    // Shallow buffer: RTT barely moves, beta should sit near the 0.8 cap.
    let mut shallow = Loop::new(CcaKind::Htcp, 87, 9);
    shallow.run(300);
    // Deep buffer: bufferbloat pushes RTT up, beta falls toward 0.5.
    let mut deep = Loop::new(CcaKind::Htcp, 87, 870);
    deep.run(300);
    // Compare post-loss cut ratios indirectly via delivered means: both
    // should still utilize well; the interesting assertion is on cwnd cut.
    // Drive each to a loss and measure the cut ratio.
    let cut_ratio = |l: &mut Loop| {
        for _ in 0..400 {
            let before = l.cca.cwnd();
            let losses_before = l.losses;
            l.round();
            if l.losses > losses_before {
                return l.cca.cwnd() as f64 / before as f64;
            }
        }
        panic!("no loss observed");
    };
    let r_shallow = cut_ratio(&mut shallow);
    let r_deep = cut_ratio(&mut deep);
    assert!(
        r_deep < r_shallow + 0.05,
        "deep-buffer H-TCP must back off at least as hard: shallow={r_shallow:.2} deep={r_deep:.2}"
    );
    assert!(r_shallow > 0.6, "shallow-buffer H-TCP should cut gently: {r_shallow:.2}");
}

#[test]
fn bbr1_inflight_stays_near_two_bdp_despite_huge_buffer() {
    let mut l = Loop::new(CcaKind::BbrV1, 87, 87 * 16);
    l.run(400);
    let cwnd_pkts = l.cca.cwnd() / MSS;
    assert!(
        cwnd_pkts <= 87 * 5 / 2,
        "BBRv1 cwnd {cwnd_pkts} pkts must respect ~2 BDP cap (87-pkt BDP)"
    );
}

#[test]
fn reno_additive_increase_rate_is_one_mss_per_rtt() {
    let mut l = Loop::new(CcaKind::Reno, 1000, 1000);
    // Exit slow start via an early loss.
    l.cca.on_loss_event(&LossEvent {
        now: SimTime::ZERO,
        inflight: l.cca.cwnd(),
        delivered: 0,
        min_rtt: SimDuration::from_millis(BASE_RTT_MS),
        max_rtt_epoch: SimDuration::from_millis(BASE_RTT_MS),
    });
    let w0 = l.cca.cwnd();
    for _ in 0..50 {
        l.round();
    }
    let w1 = l.cca.cwnd();
    let per_rtt = (w1 - w0) as f64 / 50.0 / MSS as f64;
    assert!(
        (0.7..=1.3).contains(&per_rtt),
        "Reno CA slope {per_rtt:.2} MSS/RTT, want ~1"
    );
}
