//! Property-based tests on congestion-controller invariants (seeded harness).

use elephants_cca::{
    build_cca_seeded, AckEvent, CcaKind, CongestionControl, LossEvent, WindowedMaxByRound,
    WindowedMinByTime,
};
use elephants_netsim::prop::{run_cases, vec_of};
use elephants_netsim::{prop_check, prop_check_eq, RngExt, SimDuration, SimTime, SmallRng};

const MSS: u32 = 1000;

fn mk_ack(now_ms: u64, rtt_ms: u64, acked: u64, inflight: u64, rate: u64, round: bool) -> AckEvent {
    AckEvent {
        now: SimTime::ZERO + SimDuration::from_millis(now_ms),
        rtt: SimDuration::from_millis(rtt_ms.max(1)),
        min_rtt: SimDuration::from_millis(rtt_ms.clamp(1, 62)),
        srtt: SimDuration::from_millis(rtt_ms.max(1)),
        newly_acked: acked,
        newly_lost: 0,
        inflight,
        delivery_rate: Some(rate.max(1)),
        app_limited: false,
        delivered: now_ms * 1000,
        round_start: round,
        ecn_ce: false,
        is_app_limited_now: false,
    }
}

/// A random but causally plausible ACK/loss script.
#[derive(Debug, Clone)]
enum Step {
    Ack { dt_ms: u64, rtt_ms: u64, acked_segs: u8, rate_mbps: u32 },
    Loss,
    Rto,
    RecoveryExit,
}

fn gen_script(rng: &mut SmallRng) -> Vec<Step> {
    vec_of(rng, 1, 300, |r| {
        // Weights mirror the old proptest strategy: 8 acks : 1 loss : 1 RTO
        // : 1 recovery exit.
        match r.random_range(0u32..11) {
            0..=7 => Step::Ack {
                dt_ms: r.random_range(1u64..100),
                rtt_ms: r.random_range(50u64..500),
                acked_segs: r.random_range(1u8..16),
                rate_mbps: r.random_range(1u32..10_000),
            },
            8 => Step::Loss,
            9 => Step::Rto,
            _ => Step::RecoveryExit,
        }
    })
}

fn drive(cca: &mut dyn CongestionControl, script: &[Step]) -> Result<(), String> {
    let mut now_ms = 0u64;
    let mut round_acc = 0u64;
    for step in script {
        match *step {
            Step::Ack { dt_ms, rtt_ms, acked_segs, rate_mbps } => {
                now_ms += dt_ms;
                round_acc += dt_ms;
                let round = round_acc >= 62;
                if round {
                    round_acc = 0;
                }
                let ack = mk_ack(
                    now_ms,
                    rtt_ms,
                    acked_segs as u64 * MSS as u64,
                    cca.cwnd() / 2,
                    rate_mbps as u64 * 1_000_000,
                    round,
                );
                cca.on_ack(&ack, false);
            }
            Step::Loss => {
                let ev = LossEvent {
                    now: SimTime::ZERO + SimDuration::from_millis(now_ms),
                    inflight: cca.cwnd(),
                    delivered: now_ms * 1000,
                    min_rtt: SimDuration::from_millis(62),
                    max_rtt_epoch: SimDuration::from_millis(80),
                };
                cca.on_loss_event(&ev);
            }
            Step::Rto => cca.on_rto(SimTime::ZERO + SimDuration::from_millis(now_ms)),
            Step::RecoveryExit => {
                cca.on_recovery_exit(SimTime::ZERO + SimDuration::from_millis(now_ms))
            }
        }
        // Universal invariants, checked after every step.
        prop_check!(cca.cwnd() >= MSS as u64, "{}: cwnd below 1 MSS: {}", cca.name(), cca.cwnd());
        prop_check!(cca.cwnd() < 10_000_000_000, "{}: cwnd exploded: {}", cca.name(), cca.cwnd());
        if let Some(rate) = cca.pacing_rate() {
            prop_check!(rate > 0, "{}: zero pacing rate", cca.name());
        }
    }
    Ok(())
}

#[test]
fn all_ccas_survive_arbitrary_scripts() {
    run_cases("all_ccas_survive_arbitrary_scripts", 48, |rng| {
        let script = gen_script(rng);
        let kind = CcaKind::ALL[rng.random_range(0usize..5)];
        let mut cca = build_cca_seeded(kind, MSS, 7);
        drive(cca.as_mut(), &script)
    });
}

/// Loss-based CCAs shrink multiplicatively on a loss event.
#[test]
fn loss_based_ccas_cut_on_loss() {
    run_cases("loss_based_ccas_cut_on_loss", 48, |rng| {
        let kind = [CcaKind::Reno, CcaKind::Cubic, CcaKind::Htcp][rng.random_range(0usize..3)];
        let w = rng.random_range(20u64..10_000);
        let mut cca = build_cca_seeded(kind, MSS, 1);
        // Grow to w segments via slow start.
        while cca.cwnd() < w * MSS as u64 {
            cca.on_ack(&mk_ack(1, 62, MSS as u64, 0, 1_000_000, false), false);
            if !cca.in_slow_start() {
                break;
            }
        }
        let before = cca.cwnd();
        cca.on_loss_event(&LossEvent {
            now: SimTime::ZERO,
            inflight: before,
            delivered: 0,
            min_rtt: SimDuration::from_millis(62),
            max_rtt_epoch: SimDuration::from_millis(80),
        });
        let after = cca.cwnd();
        prop_check!(
            after < before || before <= 2 * MSS as u64,
            "{}: no cut {before} -> {after}",
            kind.name()
        );
        prop_check!(
            after as f64 >= before as f64 * 0.45,
            "{}: cut too deep {before} -> {after}",
            kind.name()
        );
        Ok(())
    });
}

/// The windowed-max filter always returns an inserted value and is
/// never below any in-window sample.
#[test]
fn max_filter_correctness() {
    run_cases("max_filter_correctness", 256, |rng| {
        let vals = vec_of(rng, 1, 100, |r| r.random_range(1u64..1_000_000));
        let mut f = WindowedMaxByRound::new(8);
        let mut hist: Vec<(u64, u64)> = vec![];
        for (round, &v) in vals.iter().enumerate() {
            let round = round as u64;
            f.update(round, v);
            hist.push((round, v));
            let expect = hist
                .iter()
                .filter(|&&(r, _)| r + 8 >= round)
                .map(|&(_, v)| v)
                .max()
                .unwrap();
            prop_check_eq!(f.get(), Some(expect));
        }
        Ok(())
    });
}

/// The windowed-min filter matches a brute-force reference.
#[test]
fn min_filter_correctness() {
    run_cases("min_filter_correctness", 256, |rng| {
        let vals = vec_of(rng, 1, 100, |r| {
            (r.random_range(0u64..10_000), r.random_range(1u64..100_000))
        });
        let mut f = WindowedMinByTime::new(SimDuration::from_micros(5_000));
        let mut hist: Vec<(u64, u64)> = vec![];
        let mut t = 0u64;
        for &(dt, v) in &vals {
            t += dt;
            f.update(SimTime::from_nanos(t * 1_000), SimDuration::from_nanos(v));
            hist.push((t, v));
            let expect = hist
                .iter()
                .filter(|&&(ht, _)| (t - ht) * 1_000 <= 5_000_000)
                .map(|&(_, v)| v)
                .min()
                .unwrap();
            prop_check_eq!(f.get(), Some(SimDuration::from_nanos(expect)), "at t={}", t);
        }
        Ok(())
    });
}
