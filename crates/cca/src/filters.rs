//! Windowed max/min filters used by the BBR bandwidth/RTT models.
//!
//! Both are monotonic-deque sliding-window filters: `O(1)` amortized per
//! update, exact (unlike the 3-sample approximation in Linux `minmax.c`,
//! which these are behaviourally equivalent to for BBR's purposes).

use elephants_netsim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Sliding-window **maximum** keyed by round-trip count.
///
/// BBR's bottleneck-bandwidth estimate is the max delivery-rate sample over
/// the last `window` rounds.
#[derive(Debug, Clone)]
pub struct WindowedMaxByRound {
    window: u64,
    /// (round, value), values strictly decreasing front→back.
    samples: VecDeque<(u64, u64)>,
}

impl WindowedMaxByRound {
    /// A filter over the last `window` rounds.
    pub fn new(window: u64) -> Self {
        assert!(window > 0);
        WindowedMaxByRound { window, samples: VecDeque::new() }
    }

    /// Insert a sample observed in `round`.
    pub fn update(&mut self, round: u64, value: u64) {
        while self.samples.back().is_some_and(|&(_, v)| v <= value) {
            self.samples.pop_back();
        }
        self.samples.push_back((round, value));
        self.expire(round);
    }

    /// Advance time without a new sample (expire old entries).
    pub fn expire(&mut self, current_round: u64) {
        let cutoff = current_round.saturating_sub(self.window);
        while self.samples.front().is_some_and(|&(r, _)| r < cutoff) {
            self.samples.pop_front();
        }
    }

    /// Current windowed maximum, or `None` if no samples survive.
    pub fn get(&self) -> Option<u64> {
        self.samples.front().map(|&(_, v)| v)
    }

    /// Drop all state.
    pub fn reset(&mut self) {
        self.samples.clear();
    }

    /// Structural invariant of the monotonic deque (checker probe):
    /// values strictly decreasing and rounds nondecreasing front→back.
    pub fn is_monotone(&self) -> bool {
        self.samples
            .iter()
            .zip(self.samples.iter().skip(1))
            .all(|(&(r0, v0), &(r1, v1))| v0 > v1 && r0 <= r1)
    }
}

/// Sliding-window **minimum** keyed by timestamp.
///
/// BBR's propagation-delay estimate is the min RTT sample over the last
/// `window` of wall-clock time.
#[derive(Debug, Clone)]
pub struct WindowedMinByTime {
    window: SimDuration,
    /// (time, value), values strictly increasing front→back.
    samples: VecDeque<(SimTime, SimDuration)>,
}

impl WindowedMinByTime {
    /// A filter over the last `window` of time.
    pub fn new(window: SimDuration) -> Self {
        WindowedMinByTime { window, samples: VecDeque::new() }
    }

    /// Insert a sample observed at `now`.
    pub fn update(&mut self, now: SimTime, value: SimDuration) {
        while self.samples.back().is_some_and(|&(_, v)| v >= value) {
            self.samples.pop_back();
        }
        self.samples.push_back((now, value));
        self.expire(now);
    }

    /// Expire entries older than the window.
    pub fn expire(&mut self, now: SimTime) {
        while self.samples.front().is_some_and(|&(t, _)| now.since(t) > self.window) {
            self.samples.pop_front();
        }
    }

    /// Current windowed minimum.
    pub fn get(&self) -> Option<SimDuration> {
        self.samples.front().map(|&(_, v)| v)
    }

    /// Timestamp of the sample that currently defines the minimum.
    pub fn min_since(&self) -> Option<SimTime> {
        self.samples.front().map(|&(t, _)| t)
    }

    /// Whether the current minimum is older than the window (stale) at `now`.
    pub fn is_stale(&self, now: SimTime) -> bool {
        match self.samples.front() {
            Some(&(t, _)) => now.since(t) > self.window,
            None => true,
        }
    }

    /// Drop all state.
    pub fn reset(&mut self) {
        self.samples.clear();
    }

    /// Structural invariant of the monotonic deque (checker probe):
    /// values strictly increasing and timestamps nondecreasing front→back.
    pub fn is_monotone(&self) -> bool {
        self.samples
            .iter()
            .zip(self.samples.iter().skip(1))
            .all(|(&(t0, v0), &(t1, v1))| v0 < v1 && t0 <= t1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    fn at(x: u64) -> SimTime {
        SimTime::from_nanos(x * 1_000_000)
    }

    #[test]
    fn max_filter_tracks_peak() {
        let mut f = WindowedMaxByRound::new(10);
        f.update(0, 100);
        f.update(1, 300);
        f.update(2, 200);
        assert_eq!(f.get(), Some(300));
    }

    #[test]
    fn max_filter_expires_old_peak() {
        let mut f = WindowedMaxByRound::new(3);
        f.update(0, 1000);
        f.update(1, 100);
        f.update(2, 100);
        assert_eq!(f.get(), Some(1000));
        f.update(4, 100); // round 0 now outside [1..4]
        assert_eq!(f.get(), Some(100));
    }

    #[test]
    fn max_filter_equal_values_refresh_window() {
        let mut f = WindowedMaxByRound::new(3);
        f.update(0, 500);
        f.update(2, 500); // same value, newer round → window slides
        f.update(4, 100);
        assert_eq!(f.get(), Some(500));
        f.update(6, 100);
        assert_eq!(f.get(), Some(100));
    }

    #[test]
    fn min_filter_tracks_trough_and_expiry() {
        let mut f = WindowedMinByTime::new(ms(100));
        f.update(at(0), ms(50));
        f.update(at(10), ms(30));
        f.update(at(20), ms(40));
        assert_eq!(f.get(), Some(ms(30)));
        // At t=150 the t=10 sample (value 30) is stale; 40 survives.
        f.update(at(115), ms(45));
        assert_eq!(f.get(), Some(ms(40)));
        f.expire(at(125));
        assert_eq!(f.get(), Some(ms(45)));
    }

    #[test]
    fn min_filter_staleness() {
        let mut f = WindowedMinByTime::new(ms(100));
        assert!(f.is_stale(at(0)));
        f.update(at(0), ms(10));
        assert!(!f.is_stale(at(50)));
        assert!(f.is_stale(at(150)));
    }

    #[test]
    fn brute_force_equivalence_max() {
        // Compare against a naive windowed max over a pseudo-random stream.
        let mut f = WindowedMaxByRound::new(5);
        let mut hist: Vec<(u64, u64)> = vec![];
        let mut x: u64 = 0x12345678;
        for round in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = x >> 48;
            f.update(round, v);
            hist.push((round, v));
            let naive = hist
                .iter()
                .filter(|&&(r, _)| r + 5 >= round && r <= round)
                .map(|&(_, v)| v)
                .max();
            assert_eq!(f.get(), naive, "round {round}");
        }
    }
}
