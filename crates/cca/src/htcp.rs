//! Hamilton TCP (Leith & Shorten 2004) — adaptive AIMD for high
//! bandwidth-delay-product paths.
//!
//! H-TCP scales its additive-increase factor α with the *time elapsed since
//! the last congestion event* (so long-running loss-free flows accelerate),
//! and adapts its backoff factor β to the ratio `RTT_min / RTT_max` of the
//! last congestion epoch. The adaptive β is the behaviour the paper leans
//! on: as FIFO bufferbloat inflates `RTT_max`, β falls toward 0.5 and H-TCP
//! cedes buffer space that CUBIC then occupies (paper §5.1).

use crate::{AckEvent, CcaState, CongestionControl, LossEvent, INITIAL_CWND_SEGMENTS, MIN_CWND_SEGMENTS};
use elephants_netsim::{SimDuration, SimTime};
use elephants_json::impl_json_struct;

/// H-TCP parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HtcpConfig {
    /// Low-speed regime length Δ_L: below this time since the last loss,
    /// behave like Reno (α = 1).
    pub delta_l: SimDuration,
    /// Adaptive backoff: β = RTT_min/RTT_max (clamped); if off, β = 0.5.
    pub adaptive_backoff: bool,
    /// Throughput-change threshold that resets β to 0.5.
    pub throughput_jump: f64,
    /// Lower clamp for β.
    pub beta_min: f64,
    /// Upper clamp for β.
    pub beta_max: f64,
}

impl_json_struct!(HtcpConfig { delta_l, adaptive_backoff, throughput_jump, beta_min, beta_max });

impl Default for HtcpConfig {
    fn default() -> Self {
        HtcpConfig {
            delta_l: SimDuration::from_secs(1),
            adaptive_backoff: true,
            throughput_jump: 0.2,
            beta_min: 0.5,
            beta_max: 0.8,
        }
    }
}

/// The H-TCP congestion controller.
#[derive(Debug, Clone)]
pub struct Htcp {
    cfg: HtcpConfig,
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// When the current congestion epoch began (last loss; None = no loss yet).
    epoch_start: Option<SimTime>,
    /// Current backoff factor.
    beta: f64,
    /// RTT extremes observed during the current epoch.
    rtt_min_epoch: Option<SimDuration>,
    rtt_max_epoch: Option<SimDuration>,
    /// Delivered-byte counter at epoch start, for the throughput estimate.
    delivered_at_epoch: u64,
    /// Previous epoch's throughput estimate (bytes/s).
    prev_throughput: Option<f64>,
    /// Sub-segment growth accumulator.
    cwnd_cnt: f64,
    /// (cwnd, ssthresh) before the last RTO, for spurious-RTO undo.
    undo: Option<(u64, u64)>,
}

impl Htcp {
    /// A fresh H-TCP controller with IW10.
    pub fn new(cfg: HtcpConfig, mss: u32) -> Self {
        let mss = mss as u64;
        Htcp {
            cfg,
            mss,
            cwnd: INITIAL_CWND_SEGMENTS * mss,
            ssthresh: u64::MAX,
            epoch_start: None,
            beta: 0.5,
            rtt_min_epoch: None,
            rtt_max_epoch: None,
            delivered_at_epoch: 0,
            prev_throughput: None,
            cwnd_cnt: 0.0,
            undo: None,
        }
    }

    /// Current backoff factor β (test hook).
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Additive-increase factor α for elapsed time `delta` since last loss.
    pub fn alpha(&self, delta: SimDuration) -> f64 {
        let raw = if delta <= self.cfg.delta_l {
            1.0
        } else {
            let d = (delta - self.cfg.delta_l).as_secs_f64();
            1.0 + 10.0 * d + 0.25 * d * d
        };
        // Compensate the adaptive backoff so average throughput is
        // independent of β (H-TCP spec: α ← 2(1-β)α).
        if self.cfg.adaptive_backoff {
            2.0 * (1.0 - self.beta) * raw
        } else {
            raw
        }
    }

    fn min_cwnd(&self) -> u64 {
        MIN_CWND_SEGMENTS * self.mss
    }

    fn track_rtt(&mut self, rtt: SimDuration) {
        self.rtt_min_epoch = Some(self.rtt_min_epoch.map_or(rtt, |m| m.min(rtt)));
        self.rtt_max_epoch = Some(self.rtt_max_epoch.map_or(rtt, |m| m.max(rtt)));
    }
}

impl CongestionControl for Htcp {
    fn name(&self) -> &'static str {
        "htcp"
    }

    fn on_ack(&mut self, ev: &AckEvent, in_recovery: bool) {
        self.track_rtt(ev.rtt);
        if in_recovery || ev.newly_acked == 0 {
            return;
        }
        if self.cwnd < self.ssthresh {
            let inc = ev.newly_acked.min(self.mss);
            self.cwnd = (self.cwnd + inc).min(self.ssthresh);
            return;
        }
        // Congestion avoidance: cwnd += α/cwnd segments per ACKed segment.
        let delta = match self.epoch_start {
            Some(t0) => ev.now.since(t0),
            None => SimDuration::ZERO, // pre-first-loss: Reno-like α = 1
        };
        let alpha = self.alpha(delta);
        let acked_seg = ev.newly_acked as f64 / self.mss as f64;
        let cwnd_seg = self.cwnd as f64 / self.mss as f64;
        self.cwnd_cnt += alpha * acked_seg / cwnd_seg;
        if self.cwnd_cnt >= 1.0 {
            let whole = self.cwnd_cnt.floor();
            self.cwnd += whole as u64 * self.mss;
            self.cwnd_cnt -= whole;
        }
    }

    fn on_loss_event(&mut self, ev: &LossEvent) {
        // Update β from the epoch's RTT excursion.
        if self.cfg.adaptive_backoff {
            let new_beta = match (self.rtt_min_epoch, self.rtt_max_epoch) {
                (Some(lo), Some(hi)) if hi.as_nanos() > 0 => {
                    (lo.as_secs_f64() / hi.as_secs_f64()).clamp(self.cfg.beta_min, self.cfg.beta_max)
                }
                _ => 0.5,
            };
            // Throughput jump check: a large change in achieved rate means
            // conditions shifted; fall back to conservative β = 0.5.
            let epoch_secs = self
                .epoch_start
                .map(|t0| ev.now.since(t0).as_secs_f64())
                .unwrap_or(0.0);
            let throughput = if epoch_secs > 0.0 {
                Some((ev.delivered.saturating_sub(self.delivered_at_epoch)) as f64 / epoch_secs)
            } else {
                None
            };
            self.beta = match (throughput, self.prev_throughput) {
                (Some(b1), Some(b0)) if b0 > 0.0 && ((b1 - b0) / b0).abs() > self.cfg.throughput_jump => 0.5,
                _ => new_beta,
            };
            self.prev_throughput = throughput.or(self.prev_throughput);
        } else {
            self.beta = 0.5;
        }

        let new = ((self.cwnd as f64 * self.beta) as u64).max(self.min_cwnd());
        self.ssthresh = new;
        self.cwnd = new;
        self.cwnd_cnt = 0.0;
        // New epoch begins.
        self.epoch_start = Some(ev.now);
        self.rtt_min_epoch = None;
        self.rtt_max_epoch = None;
        self.delivered_at_epoch = ev.delivered;
    }

    fn on_rto(&mut self, now: SimTime) {
        self.undo = Some((self.cwnd, self.ssthresh));
        self.ssthresh = ((self.cwnd as f64 * 0.5) as u64).max(self.min_cwnd());
        self.cwnd = self.mss;
        self.cwnd_cnt = 0.0;
        self.epoch_start = Some(now);
        self.rtt_min_epoch = None;
        self.rtt_max_epoch = None;
    }

    fn on_spurious_rto(&mut self, _now: SimTime) {
        if let Some((cwnd, ssthresh)) = self.undo.take() {
            self.cwnd = self.cwnd.max(cwnd);
            self.ssthresh = ssthresh;
        }
    }

    fn on_recovery_exit(&mut self, _now: SimTime) {
        self.cwnd = self.cwnd.max(self.min_cwnd());
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn pacing_rate(&self) -> Option<u64> {
        None
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn state_snapshot(&self) -> CcaState {
        CcaState {
            phase: if self.in_slow_start() { "slow_start" } else { "htcp" },
            cwnd: self.cwnd,
            ssthresh: self.ssthresh,
            pacing_rate: None,
            bw_estimate: None,
            pacing_gain: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1000;

    fn ack_at(now_ms: u64, rtt_ms: u64, acked: u64) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO + SimDuration::from_millis(now_ms),
            rtt: SimDuration::from_millis(rtt_ms),
            min_rtt: SimDuration::from_millis(62),
            srtt: SimDuration::from_millis(rtt_ms),
            newly_acked: acked,
            newly_lost: 0,
            inflight: 0,
            delivery_rate: None,
            app_limited: false,
            delivered: 0,
            round_start: false,
            ecn_ce: false,
            is_app_limited_now: false,
        }
    }

    fn loss_at(now_ms: u64, delivered: u64) -> LossEvent {
        LossEvent {
            now: SimTime::ZERO + SimDuration::from_millis(now_ms),
            inflight: 0,
            delivered,
            min_rtt: SimDuration::from_millis(62),
            max_rtt_epoch: SimDuration::from_millis(62),
        }
    }

    #[test]
    fn alpha_is_one_in_low_speed_regime() {
        let mut h = Htcp::new(HtcpConfig { adaptive_backoff: false, ..Default::default() }, MSS);
        h.beta = 0.5;
        assert_eq!(h.alpha(SimDuration::from_millis(500)), 1.0);
        assert_eq!(h.alpha(SimDuration::from_secs(1)), 1.0);
    }

    #[test]
    fn alpha_grows_quadratically_past_delta_l() {
        let h = Htcp::new(HtcpConfig { adaptive_backoff: false, ..Default::default() }, MSS);
        // Δ = 3 s → d = 2: α = 1 + 20 + 1 = 22.
        assert!((h.alpha(SimDuration::from_secs(3)) - 22.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_scaled_by_backoff_compensation() {
        let mut h = Htcp::new(HtcpConfig::default(), MSS);
        h.beta = 0.8;
        // 2(1-0.8) = 0.4 scaling.
        assert!((h.alpha(SimDuration::from_secs(1)) - 0.4).abs() < 1e-9);
        h.beta = 0.5;
        assert!((h.alpha(SimDuration::from_secs(1)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn beta_tracks_rtt_ratio() {
        let mut h = Htcp::new(HtcpConfig::default(), MSS);
        h.ssthresh = h.cwnd; // CA
        // Epoch with RTT from 62 to 88.6 ms: β = 62/88.6 ≈ 0.7.
        h.on_ack(&ack_at(0, 62, 1000), false);
        h.on_ack(&ack_at(10, 88, 1000), false);
        h.on_loss_event(&loss_at(20, 1_000_000));
        assert!((h.beta() - 62.0 / 88.0).abs() < 1e-9, "beta = {}", h.beta());
    }

    #[test]
    fn beta_clamped_to_half_under_bufferbloat() {
        let mut h = Htcp::new(HtcpConfig::default(), MSS);
        h.ssthresh = h.cwnd;
        // RTT doubles: ratio 0.31 clamps to 0.5.
        h.on_ack(&ack_at(0, 62, 1000), false);
        h.on_ack(&ack_at(10, 200, 1000), false);
        h.on_loss_event(&loss_at(20, 1_000_000));
        assert_eq!(h.beta(), 0.5);
    }

    #[test]
    fn beta_clamped_to_max_when_rtt_flat() {
        let mut h = Htcp::new(HtcpConfig::default(), MSS);
        h.ssthresh = h.cwnd;
        h.on_ack(&ack_at(0, 62, 1000), false);
        h.on_ack(&ack_at(10, 62, 1000), false);
        h.on_loss_event(&loss_at(20, 1_000_000));
        assert_eq!(h.beta(), 0.8);
    }

    #[test]
    fn loss_multiplies_cwnd_by_beta() {
        let mut h = Htcp::new(HtcpConfig::default(), MSS);
        h.cwnd = 100 * MSS as u64;
        h.ssthresh = h.cwnd;
        h.on_ack(&ack_at(0, 62, 1000), false);
        h.on_ack(&ack_at(10, 62, 1000), false);
        h.on_loss_event(&loss_at(20, 1_000_000));
        assert_eq!(h.cwnd(), 80 * MSS as u64); // β = 0.8
    }

    #[test]
    fn long_loss_free_epoch_accelerates_growth() {
        let mut h = Htcp::new(HtcpConfig::default(), MSS);
        h.cwnd = 100 * MSS as u64;
        h.ssthresh = h.cwnd;
        h.on_loss_event(&loss_at(0, 0)); // epoch starts, cwnd -> 50 (β=0.5 default first loss... β from empty epoch = 0.5)
        let w0 = h.cwnd();
        // 0.5 s of ACKs: α = 1-regime.
        for i in 0..50 {
            h.on_ack(&ack_at(10 * i + 10, 62, 1000), false);
        }
        let early_gain = h.cwnd() - w0;
        // Now jump to 5 s since loss: α large.
        let w1 = h.cwnd();
        for i in 0..50 {
            h.on_ack(&ack_at(5000 + 10 * i, 62, 1000), false);
        }
        let late_gain = h.cwnd() - w1;
        assert!(late_gain > early_gain * 5, "late {late_gain} vs early {early_gain}");
    }

    #[test]
    fn rto_collapses_window() {
        let mut h = Htcp::new(HtcpConfig::default(), MSS);
        h.cwnd = 40 * MSS as u64;
        h.on_rto(SimTime::ZERO);
        assert_eq!(h.cwnd(), MSS as u64);
        assert_eq!(h.ssthresh(), 20 * MSS as u64);
    }

    #[test]
    fn slow_start_respects_ssthresh_cap() {
        let mut h = Htcp::new(HtcpConfig::default(), MSS);
        h.ssthresh = 12 * MSS as u64;
        // Two ACKs reach the threshold exactly; the flow leaves slow start.
        h.on_ack(&ack_at(0, 62, MSS as u64), false);
        h.on_ack(&ack_at(0, 62, MSS as u64), false);
        assert_eq!(h.cwnd(), 12 * MSS as u64);
        assert!(!h.in_slow_start());
        // Further ACKs grow in congestion avoidance, ~α/cwnd per ACK.
        for _ in 0..18 {
            h.on_ack(&ack_at(0, 62, MSS as u64), false);
        }
        assert!(h.cwnd() >= 12 * MSS as u64 && h.cwnd() <= 14 * MSS as u64);
    }
}
