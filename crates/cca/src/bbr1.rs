//! BBR version 1 (Cardwell et al., 2016/2017).
//!
//! BBR builds an explicit model of the path — maximum recent delivery rate
//! (`BtlBw`, a windowed max over 10 rounds) and minimum recent RTT
//! (`RTprop`, a windowed min over 10 s) — and paces at `gain × BtlBw` while
//! capping inflight at `cwnd_gain × BDP` (the "2 BDP inflight cap" the paper
//! repeatedly invokes). It is deliberately **loss-blind**: packet loss does
//! not reduce the sending rate; only an RTO collapses the window.
//!
//! State machine: `Startup → Drain → ProbeBW ⇄ ProbeRTT`.

use crate::filters::WindowedMaxByRound;
use crate::{AckEvent, CcaState, CongestionControl, LossEvent, INITIAL_CWND_SEGMENTS};
use elephants_netsim::{SimDuration, SimTime};
use elephants_json::impl_json_struct;

/// BBRv1 tuning constants (defaults mirror Linux `tcp_bbr.c`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BbrV1Config {
    /// Startup/Drain gain: 2/ln(2) ≈ 2.885.
    pub high_gain: f64,
    /// Steady-state cwnd gain (the 2 BDP inflight cap).
    pub cwnd_gain: f64,
    /// BtlBw max-filter window, in rounds.
    pub bw_window_rounds: u64,
    /// RTprop min-filter window.
    pub rtprop_window: SimDuration,
    /// Time spent at the reduced window in ProbeRTT.
    pub probe_rtt_duration: SimDuration,
    /// Rounds of <25 % bandwidth growth that mark the pipe full.
    pub full_bw_count: u32,
    /// Growth threshold for the pipe-full check.
    pub full_bw_thresh: f64,
    /// Seed for the deterministic ProbeBW phase randomizer.
    pub seed: u64,
}

impl_json_struct!(BbrV1Config {
    high_gain,
    cwnd_gain,
    bw_window_rounds,
    rtprop_window,
    probe_rtt_duration,
    full_bw_count,
    full_bw_thresh,
    seed,
});

impl Default for BbrV1Config {
    fn default() -> Self {
        BbrV1Config {
            high_gain: 2.885,
            cwnd_gain: 2.0,
            bw_window_rounds: 10,
            rtprop_window: SimDuration::from_secs(10),
            probe_rtt_duration: SimDuration::from_millis(200),
            full_bw_count: 3,
            full_bw_thresh: 1.25,
            seed: 0,
        }
    }
}

/// The ProbeBW pacing-gain cycle (8 phases of ~1 RTprop each).
pub const PROBE_BW_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];

/// BBR operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BbrMode {
    /// Exponential search for the bottleneck bandwidth.
    Startup,
    /// Drain the queue Startup built.
    Drain,
    /// Steady-state bandwidth probing.
    ProbeBw,
    /// Periodic floor-RTT re-measurement.
    ProbeRtt,
}

/// The BBRv1 congestion controller.
#[derive(Debug, Clone)]
pub struct BbrV1 {
    cfg: BbrV1Config,
    mss: u64,
    mode: BbrMode,
    cwnd: u64,
    prior_cwnd: u64,
    pacing_gain: f64,
    cwnd_gain: f64,
    // Model.
    bw_filter: WindowedMaxByRound,
    rtprop: SimDuration,
    rtprop_stamp: SimTime,
    rtprop_valid: bool,
    round_count: u64,
    // Startup full-pipe detection.
    full_bw: u64,
    full_bw_cnt: u32,
    full_pipe: bool,
    // ProbeBW cycling.
    cycle_index: usize,
    cycle_stamp: SimTime,
    // ProbeRTT bookkeeping.
    /// Whether the RTprop estimate was stale when the current ACK arrived
    /// (computed before the refresh, as in Linux `bbr_update_min_rtt`).
    rtprop_expired: bool,
    probe_rtt_done_stamp: Option<SimTime>,
    probe_rtt_round_done: bool,
    probe_rtt_enter_round: u64,
    // Deterministic phase randomness.
    rng_state: u64,
    // RTO bookkeeping.
    in_rto_recovery: bool,
}

impl BbrV1 {
    /// A fresh BBRv1 controller with IW10.
    pub fn new(cfg: BbrV1Config, mss: u32) -> Self {
        let mss = mss as u64;
        BbrV1 {
            mss,
            mode: BbrMode::Startup,
            cwnd: INITIAL_CWND_SEGMENTS * mss,
            prior_cwnd: 0,
            pacing_gain: cfg.high_gain,
            cwnd_gain: cfg.high_gain,
            bw_filter: WindowedMaxByRound::new(cfg.bw_window_rounds),
            rtprop: SimDuration::MAX,
            rtprop_stamp: SimTime::ZERO,
            rtprop_valid: false,
            round_count: 0,
            full_bw: 0,
            full_bw_cnt: 0,
            full_pipe: false,
            cycle_index: 0,
            cycle_stamp: SimTime::ZERO,
            rtprop_expired: false,
            probe_rtt_done_stamp: None,
            probe_rtt_round_done: false,
            probe_rtt_enter_round: 0,
            rng_state: cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            in_rto_recovery: false,
            cfg,
        }
    }

    /// Current mode (test hook).
    pub fn mode(&self) -> BbrMode {
        self.mode
    }

    /// Current bottleneck-bandwidth estimate (bits/s).
    pub fn btlbw(&self) -> Option<u64> {
        self.bw_filter.get()
    }

    /// Current RTprop estimate.
    pub fn rtprop(&self) -> Option<SimDuration> {
        self.rtprop_valid.then_some(self.rtprop)
    }

    /// Current pacing gain (test hook).
    pub fn pacing_gain(&self) -> f64 {
        self.pacing_gain
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: deterministic per-flow randomness.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// BDP in bytes for the current model, scaled by `gain`.
    fn inflight_target(&self, gain: f64) -> u64 {
        let (Some(bw), true) = (self.bw_filter.get(), self.rtprop_valid) else {
            return INITIAL_CWND_SEGMENTS * self.mss;
        };
        let bdp = bw as f64 * self.rtprop.as_secs_f64() / 8.0;
        ((gain * bdp) as u64).max(self.min_pipe_cwnd())
    }

    fn min_pipe_cwnd(&self) -> u64 {
        4 * self.mss
    }

    fn update_model(&mut self, ev: &AckEvent) {
        if ev.round_start {
            self.round_count += 1;
        }
        if let Some(rate) = ev.delivery_rate {
            // App-limited samples only raise the estimate, never refresh it.
            if !ev.app_limited || Some(rate) >= self.bw_filter.get() {
                self.bw_filter.update(self.round_count, rate);
            }
        }
        let expired = self.rtprop_valid && ev.now.since(self.rtprop_stamp) > self.cfg.rtprop_window;
        self.rtprop_expired = expired;
        if !self.rtprop_valid || ev.rtt <= self.rtprop || expired {
            self.rtprop = ev.rtt;
            self.rtprop_stamp = ev.now;
            self.rtprop_valid = true;
        }
    }

    fn check_full_pipe(&mut self, ev: &AckEvent) {
        if self.full_pipe || !ev.round_start || ev.app_limited {
            return;
        }
        let Some(bw) = self.bw_filter.get() else { return };
        if bw as f64 >= self.full_bw as f64 * self.cfg.full_bw_thresh {
            self.full_bw = bw;
            self.full_bw_cnt = 0;
            return;
        }
        self.full_bw_cnt += 1;
        if self.full_bw_cnt >= self.cfg.full_bw_count {
            self.full_pipe = true;
        }
    }

    fn enter_probe_bw(&mut self, now: SimTime) {
        self.mode = BbrMode::ProbeBw;
        self.cwnd_gain = self.cfg.cwnd_gain;
        // Random initial phase, excluding the 0.75 (drain) phase — per spec.
        let r = (self.next_rand() % 7) as usize;
        self.cycle_index = if r >= 1 { r + 1 } else { 0 };
        self.cycle_stamp = now;
        self.pacing_gain = PROBE_BW_GAINS[self.cycle_index];
    }

    fn advance_cycle(&mut self, ev: &AckEvent) {
        // Phase advances roughly once per RTprop; the 1.25 phase holds until
        // it has actually inflated inflight (or saw loss), the 0.75 phase
        // ends as soon as inflight is back at 1 BDP.
        let elapsed = ev.now.since(self.cycle_stamp);
        let should_advance = match PROBE_BW_GAINS[self.cycle_index] {
            g if g > 1.0 => {
                elapsed > self.rtprop
                    && (ev.newly_lost > 0 || ev.inflight >= self.inflight_target(g))
            }
            g if g < 1.0 => {
                elapsed > self.rtprop || ev.inflight <= self.inflight_target(1.0)
            }
            _ => elapsed > self.rtprop,
        };
        if should_advance {
            self.cycle_index = (self.cycle_index + 1) % PROBE_BW_GAINS.len();
            self.cycle_stamp = ev.now;
            self.pacing_gain = PROBE_BW_GAINS[self.cycle_index];
        }
    }

    fn check_probe_rtt(&mut self, ev: &AckEvent) {
        // Enter ProbeRTT when the RTprop estimate has gone stale.
        if self.mode != BbrMode::ProbeRtt && self.rtprop_valid && self.rtprop_expired {
            self.mode = BbrMode::ProbeRtt;
            self.pacing_gain = 1.0;
            self.cwnd_gain = 1.0;
            self.prior_cwnd = self.prior_cwnd.max(self.cwnd);
            self.probe_rtt_done_stamp = None;
            self.probe_rtt_round_done = false;
            self.probe_rtt_enter_round = self.round_count;
        }
        if self.mode == BbrMode::ProbeRtt {
            if self.probe_rtt_done_stamp.is_none() && ev.inflight <= self.min_pipe_cwnd() {
                self.probe_rtt_done_stamp = Some(ev.now + self.cfg.probe_rtt_duration);
            }
            if ev.round_start && self.round_count > self.probe_rtt_enter_round {
                self.probe_rtt_round_done = true;
            }
            if let Some(done) = self.probe_rtt_done_stamp {
                if self.probe_rtt_round_done && ev.now >= done {
                    // Fresh floor measurement: restart the clock.
                    self.rtprop_stamp = ev.now;
                    self.cwnd = self.cwnd.max(self.prior_cwnd);
                    if self.full_pipe {
                        self.enter_probe_bw(ev.now);
                    } else {
                        self.mode = BbrMode::Startup;
                        self.pacing_gain = self.cfg.high_gain;
                        self.cwnd_gain = self.cfg.high_gain;
                    }
                }
            }
        }
    }

    fn set_cwnd(&mut self, ev: &AckEvent) {
        let target = self.inflight_target(self.cwnd_gain);
        if self.mode == BbrMode::ProbeRtt {
            self.cwnd = self.cwnd.min(self.min_pipe_cwnd());
            return;
        }
        if self.full_pipe {
            self.cwnd = (self.cwnd + ev.newly_acked).min(target);
        } else if self.cwnd < target {
            // Startup: grow by bytes acked toward the high-gain target,
            // never shrinking (Linux bbr_set_cwnd).
            self.cwnd += ev.newly_acked;
        }
        self.cwnd = self.cwnd.max(self.min_pipe_cwnd());
    }
}

impl CongestionControl for BbrV1 {
    fn name(&self) -> &'static str {
        "bbr1"
    }

    fn on_ack(&mut self, ev: &AckEvent, _in_recovery: bool) {
        self.update_model(ev);

        match self.mode {
            BbrMode::Startup => {
                self.check_full_pipe(ev);
                if self.full_pipe {
                    self.mode = BbrMode::Drain;
                    self.pacing_gain = 1.0 / self.cfg.high_gain;
                    self.cwnd_gain = self.cfg.high_gain;
                }
            }
            BbrMode::Drain => {
                if ev.inflight <= self.inflight_target(1.0) {
                    self.enter_probe_bw(ev.now);
                }
            }
            BbrMode::ProbeBw => self.advance_cycle(ev),
            BbrMode::ProbeRtt => {}
        }
        self.check_probe_rtt(ev);
        self.set_cwnd(ev);
        self.in_rto_recovery = false;
    }

    fn on_loss_event(&mut self, _ev: &LossEvent) {
        // Loss-blind by design: BBRv1 does not react to fast-retransmit
        // losses (the paper's "rigid response" that inflates retransmissions).
    }

    fn on_rto(&mut self, _now: SimTime) {
        // Collapse to one segment; restore after recovery (Linux bbr saves
        // prior_cwnd and restores it when the RTO episode ends).
        self.prior_cwnd = self.prior_cwnd.max(self.cwnd);
        self.cwnd = self.mss;
        self.in_rto_recovery = true;
    }

    fn on_spurious_rto(&mut self, _now: SimTime) {
        if self.prior_cwnd > 0 {
            self.cwnd = self.cwnd.max(self.prior_cwnd);
            self.prior_cwnd = 0;
        }
    }

    fn on_recovery_exit(&mut self, _now: SimTime) {
        if self.prior_cwnd > 0 {
            self.cwnd = self.cwnd.max(self.prior_cwnd);
            self.prior_cwnd = 0;
        }
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn pacing_rate(&self) -> Option<u64> {
        match self.bw_filter.get() {
            Some(bw) => Some((self.pacing_gain * bw as f64) as u64),
            None => {
                // Bootstrap before the first rate sample: IW over 1 ms,
                // like Linux's bbr_init_pacing_rate_from_rtt.
                let iw_bits = (INITIAL_CWND_SEGMENTS * self.mss * 8) as f64;
                Some((self.cfg.high_gain * iw_bits / 0.001) as u64)
            }
        }
    }

    fn ssthresh(&self) -> u64 {
        u64::MAX
    }

    fn in_slow_start(&self) -> bool {
        self.mode == BbrMode::Startup
    }

    fn bw_estimate(&self) -> Option<u64> {
        self.bw_filter.get()
    }

    fn state_snapshot(&self) -> CcaState {
        // ProbeBW labels carry the gain phase so a recorded series exposes
        // the 8-phase cycle (1.25 up-probe -> 0.75 drain -> 6x cruise):
        // counting "probe_bw:1.25" entries counts ProbeBW cycles.
        let phase = match self.mode {
            BbrMode::Startup => "startup",
            BbrMode::Drain => "drain",
            BbrMode::ProbeRtt => "probe_rtt",
            BbrMode::ProbeBw => match PROBE_BW_GAINS[self.cycle_index] {
                g if g > 1.0 => "probe_bw:1.25",
                g if g < 1.0 => "probe_bw:0.75",
                _ => "probe_bw:1.00",
            },
        };
        CcaState {
            phase,
            cwnd: self.cwnd,
            ssthresh: u64::MAX,
            pacing_rate: self.pacing_rate(),
            bw_estimate: self.bw_filter.get(),
            pacing_gain: Some(self.pacing_gain),
        }
    }

    fn check_invariants(&self, mss: u32) -> Vec<elephants_netsim::CheckFailure> {
        let mut fails = crate::generic_cca_failures(self.cwnd(), &self.state_snapshot(), mss);
        if self.cycle_index >= PROBE_BW_GAINS.len() {
            let i = self.cycle_index;
            fails.push(elephants_netsim::CheckFailure::new(
                "bbr_cycle_index",
                format!("ProbeBW gain-cycle index {i} out of range 0..{}", PROBE_BW_GAINS.len()),
            ));
        }
        if !self.bw_filter.is_monotone() {
            fails.push(elephants_netsim::CheckFailure::new(
                "bbr_filter_monotone",
                "bandwidth max-filter deque lost its monotonic order".to_string(),
            ));
        }
        fails
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1000;

    struct AckFeeder {
        now: SimTime,
        delivered: u64,
        round: bool,
    }

    impl AckFeeder {
        fn new() -> Self {
            AckFeeder { now: SimTime::ZERO, delivered: 0, round: false }
        }

        fn ack(
            &mut self,
            advance_ms: u64,
            rate_bps: u64,
            rtt_ms: u64,
            inflight: u64,
            round_start: bool,
        ) -> AckEvent {
            self.now += SimDuration::from_millis(advance_ms);
            self.delivered += MSS as u64;
            self.round = round_start;
            AckEvent {
                now: self.now,
                rtt: SimDuration::from_millis(rtt_ms),
                min_rtt: SimDuration::from_millis(rtt_ms),
                srtt: SimDuration::from_millis(rtt_ms),
                newly_acked: MSS as u64,
                newly_lost: 0,
                inflight,
                delivery_rate: Some(rate_bps),
                app_limited: false,
                delivered: self.delivered,
                round_start,
                ecn_ce: false,
                is_app_limited_now: false,
            }
        }
    }

    #[test]
    fn starts_in_startup_with_high_gain() {
        let b = BbrV1::new(BbrV1Config::default(), MSS);
        assert_eq!(b.mode(), BbrMode::Startup);
        assert!((b.pacing_gain() - 2.885).abs() < 1e-9);
    }

    #[test]
    fn startup_exits_to_drain_when_bw_plateaus() {
        let mut b = BbrV1::new(BbrV1Config::default(), MSS);
        let mut f = AckFeeder::new();
        // Growing bandwidth: stays in startup.
        for (i, bw) in [(1, 10u64), (2, 20), (3, 40)] {
            b.on_ack(&f.ack(10, bw * 1_000_000, 50, 100_000, true), false);
            let _ = i;
            assert_eq!(b.mode(), BbrMode::Startup);
        }
        // Plateau: three rounds with <25 % growth.
        for _ in 0..3 {
            b.on_ack(&f.ack(10, 41_000_000, 50, 100_000, true), false);
        }
        assert_eq!(b.mode(), BbrMode::Drain);
        assert!(b.pacing_gain() < 1.0);
    }

    fn drive_to_probe_bw(b: &mut BbrV1, f: &mut AckFeeder) {
        for _ in 0..3 {
            b.on_ack(&f.ack(10, 40_000_000, 50, 300_000, true), false);
        }
        for _ in 0..3 {
            b.on_ack(&f.ack(10, 40_000_000, 50, 300_000, true), false);
        }
        assert_eq!(b.mode(), BbrMode::Drain);
        // Inflight drains below 1 BDP (40 Mbps * 50 ms = 250 kB).
        b.on_ack(&f.ack(10, 40_000_000, 50, 200_000, false), false);
        assert_eq!(b.mode(), BbrMode::ProbeBw);
    }

    #[test]
    fn drain_enters_probe_bw_at_one_bdp() {
        let mut b = BbrV1::new(BbrV1Config::default(), MSS);
        let mut f = AckFeeder::new();
        drive_to_probe_bw(&mut b, &mut f);
        assert!((b.pacing_gain() - PROBE_BW_GAINS[0]).abs() < 1e-9 || b.pacing_gain() == 1.0 || b.pacing_gain() == 1.25);
    }

    #[test]
    fn probe_bw_cwnd_capped_at_two_bdp() {
        let mut b = BbrV1::new(BbrV1Config::default(), MSS);
        let mut f = AckFeeder::new();
        drive_to_probe_bw(&mut b, &mut f);
        // Pump many ACKs: cwnd must not exceed 2 * BDP.
        let bdp = 40_000_000u64 / 8 / 20; // 40 Mbps * 50 ms = 250_000 B
        for _ in 0..500 {
            b.on_ack(&f.ack(1, 40_000_000, 50, 200_000, false), false);
        }
        assert!(b.cwnd() <= 2 * bdp + MSS as u64, "cwnd {} vs 2*BDP {}", b.cwnd(), 2 * bdp);
    }

    #[test]
    fn loss_events_are_ignored() {
        let mut b = BbrV1::new(BbrV1Config::default(), MSS);
        let cwnd = b.cwnd();
        b.on_loss_event(&LossEvent {
            now: SimTime::ZERO,
            inflight: 0,
            delivered: 0,
            min_rtt: SimDuration::from_millis(50),
            max_rtt_epoch: SimDuration::from_millis(60),
        });
        assert_eq!(b.cwnd(), cwnd, "BBRv1 is loss-blind");
    }

    #[test]
    fn rto_collapses_then_recovery_restores() {
        let mut b = BbrV1::new(BbrV1Config::default(), MSS);
        let mut f = AckFeeder::new();
        drive_to_probe_bw(&mut b, &mut f);
        let before = b.cwnd();
        b.on_rto(f.now);
        assert_eq!(b.cwnd(), MSS as u64);
        b.on_recovery_exit(f.now);
        assert!(b.cwnd() >= before, "prior cwnd must be restored");
    }

    #[test]
    fn probe_rtt_triggers_after_stale_rtprop() {
        let mut b = BbrV1::new(BbrV1Config::default(), MSS);
        let mut f = AckFeeder::new();
        drive_to_probe_bw(&mut b, &mut f);
        // 11 s of ACKs whose RTT never reaches the old floor.
        for _ in 0..110 {
            b.on_ack(&f.ack(100, 40_000_000, 60, 200_000, false), false);
        }
        assert_eq!(b.mode(), BbrMode::ProbeRtt);
        assert!(b.cwnd() <= 4 * MSS as u64, "ProbeRTT pins cwnd to 4 MSS");
    }

    #[test]
    fn probe_rtt_exits_after_duration_and_round() {
        let mut b = BbrV1::new(BbrV1Config::default(), MSS);
        let mut f = AckFeeder::new();
        drive_to_probe_bw(&mut b, &mut f);
        for _ in 0..110 {
            b.on_ack(&f.ack(100, 40_000_000, 60, 200_000, false), false);
        }
        assert_eq!(b.mode(), BbrMode::ProbeRtt);
        // Inflight at the floor; rounds pass; 200+ ms elapse.
        b.on_ack(&f.ack(10, 40_000_000, 50, 2_000, true), false);
        b.on_ack(&f.ack(150, 40_000_000, 50, 2_000, true), false);
        b.on_ack(&f.ack(100, 40_000_000, 50, 2_000, true), false);
        assert_eq!(b.mode(), BbrMode::ProbeBw, "ProbeRTT must end");
    }

    #[test]
    fn app_limited_samples_do_not_lower_estimate() {
        let mut b = BbrV1::new(BbrV1Config::default(), MSS);
        let mut f = AckFeeder::new();
        b.on_ack(&f.ack(10, 100_000_000, 50, 100_000, true), false);
        assert_eq!(b.btlbw(), Some(100_000_000));
        let mut ev = f.ack(10, 5_000_000, 50, 100_000, true);
        ev.app_limited = true;
        b.on_ack(&ev, false);
        assert_eq!(b.btlbw(), Some(100_000_000), "app-limited sample must not replace max");
    }

    #[test]
    fn pacing_rate_follows_gain_times_bw() {
        let mut b = BbrV1::new(BbrV1Config::default(), MSS);
        let mut f = AckFeeder::new();
        b.on_ack(&f.ack(10, 100_000_000, 50, 100_000, true), false);
        let rate = b.pacing_rate().unwrap();
        assert_eq!(rate, (2.885f64 * 100_000_000.0) as u64);
    }

    #[test]
    fn probe_bw_cycles_through_gains() {
        let mut b = BbrV1::new(BbrV1Config::default(), MSS);
        let mut f = AckFeeder::new();
        drive_to_probe_bw(&mut b, &mut f);
        let mut seen = std::collections::HashSet::new();
        // BDP = 250 kB; inflight around 250k advances all phases.
        for _ in 0..200 {
            b.on_ack(&f.ack(60, 40_000_000, 50, 320_000, false), false);
            seen.insert((b.pacing_gain() * 100.0) as u64);
        }
        assert!(seen.contains(&125), "must visit the 1.25 probe phase: {seen:?}");
        assert!(seen.contains(&75), "must visit the 0.75 drain phase");
        assert!(seen.contains(&100), "must visit cruise phases");
    }
}
