//! TCP CUBIC (Ha, Rhee & Xu 2008; RFC 8312), with HyStart.
//!
//! CUBIC replaces AIMD's linear growth with a cubic function of the time
//! since the last congestion event, anchored at the window size where the
//! loss occurred (`W_max`). It is the Linux default and the paper's
//! reference competitor in every inter-CCA experiment.

use crate::{AckEvent, CcaState, CongestionControl, LossEvent, INITIAL_CWND_SEGMENTS, MIN_CWND_SEGMENTS};
use elephants_netsim::{SimDuration, SimTime};
use elephants_json::impl_json_struct;

/// CUBIC tuning knobs (defaults mirror Linux `tcp_cubic`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CubicConfig {
    /// The cubic scaling constant `C` (segments/s³).
    pub c: f64,
    /// Multiplicative-decrease factor β.
    pub beta: f64,
    /// Release buffer faster when losses cluster (Linux default on).
    pub fast_convergence: bool,
    /// Never grow slower than an equivalent Reno flow (RFC 8312 §4.2).
    pub tcp_friendliness: bool,
    /// HyStart delay-based slow-start exit (Linux default on).
    pub hystart: bool,
}

impl_json_struct!(CubicConfig { c, beta, fast_convergence, tcp_friendliness, hystart });

impl Default for CubicConfig {
    fn default() -> Self {
        CubicConfig { c: 0.4, beta: 0.7, fast_convergence: true, tcp_friendliness: true, hystart: true }
    }
}

/// HyStart (delay increase detection) per-round state.
#[derive(Debug, Clone, Copy, Default)]
struct HyStart {
    round_min_rtt: Option<SimDuration>,
    prev_round_min_rtt: Option<SimDuration>,
    samples: u32,
}

const HYSTART_MIN_SAMPLES: u32 = 8;

impl HyStart {
    fn on_round_start(&mut self) {
        self.prev_round_min_rtt = self.round_min_rtt.or(self.prev_round_min_rtt);
        self.round_min_rtt = None;
        self.samples = 0;
    }

    /// Returns true when the delay increase says "queue is building: leave
    /// slow start".
    fn on_rtt_sample(&mut self, rtt: SimDuration) -> bool {
        self.samples += 1;
        self.round_min_rtt = Some(match self.round_min_rtt {
            Some(m) => m.min(rtt),
            None => rtt,
        });
        if self.samples < HYSTART_MIN_SAMPLES {
            return false;
        }
        let (Some(cur), Some(prev)) = (self.round_min_rtt, self.prev_round_min_rtt) else {
            return false;
        };
        // eta = clamp(prev/8, 4ms, 16ms), per HyStart++ (RFC 9406).
        let eta = (prev / 8)
            .max(SimDuration::from_millis(4))
            .min(SimDuration::from_millis(16));
        cur >= prev + eta
    }
}

/// The CUBIC congestion controller.
#[derive(Debug, Clone)]
pub struct Cubic {
    cfg: CubicConfig,
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    // --- cubic epoch state (segment units, like the reference impl) ---
    epoch_start: Option<SimTime>,
    w_max: f64,
    k: f64,
    origin_point: f64,
    /// Reno-friendly window estimate (segments).
    w_est: f64,
    /// Sub-MSS growth accumulator (Linux `snd_cwnd_cnt`).
    cwnd_cnt: f64,
    hystart: HyStart,
    /// (cwnd, ssthresh, w_max) before the last RTO, for spurious-RTO undo.
    undo: Option<(u64, u64, f64)>,
}

impl Cubic {
    /// A fresh CUBIC controller with IW10.
    pub fn new(cfg: CubicConfig, mss: u32) -> Self {
        let mss = mss as u64;
        Cubic {
            cfg,
            mss,
            cwnd: INITIAL_CWND_SEGMENTS * mss,
            ssthresh: u64::MAX,
            epoch_start: None,
            w_max: 0.0,
            k: 0.0,
            origin_point: 0.0,
            w_est: 0.0,
            cwnd_cnt: 0.0,
            hystart: HyStart::default(),
            undo: None,
        }
    }

    /// `W_max` in segments (test hook).
    pub fn w_max(&self) -> f64 {
        self.w_max
    }

    /// Time-to-origin `K` in seconds (test hook).
    pub fn k(&self) -> f64 {
        self.k
    }

    fn cwnd_seg(&self) -> f64 {
        self.cwnd as f64 / self.mss as f64
    }

    fn min_cwnd(&self) -> u64 {
        MIN_CWND_SEGMENTS * self.mss
    }

    fn enter_epoch(&mut self, now: SimTime) {
        self.epoch_start = Some(now);
        let cwnd = self.cwnd_seg();
        if cwnd < self.w_max {
            self.k = ((self.w_max - cwnd) / self.cfg.c).cbrt();
            self.origin_point = self.w_max;
        } else {
            self.k = 0.0;
            self.origin_point = cwnd;
        }
        self.w_est = cwnd;
        self.cwnd_cnt = 0.0;
    }

    /// The cubic window W(t) in segments.
    fn w_cubic(&self, t: f64) -> f64 {
        self.origin_point + self.cfg.c * (t - self.k).powi(3)
    }

    fn congestion_avoidance(&mut self, ev: &AckEvent) {
        if self.epoch_start.is_none() {
            self.enter_epoch(ev.now);
        }
        let epoch = self.epoch_start.unwrap();
        // Target the window one RTT into the future (RFC 8312 §4.1).
        let t = ev.now.since(epoch).as_secs_f64() + ev.min_rtt.as_secs_f64();
        let cwnd = self.cwnd_seg();
        let target = self.w_cubic(t);

        // Per-ACK increment: (target - cwnd)/cwnd segments, at most 1.5x
        // growth per RTT worth of ACKs (the reference's cnt >= 2 clamp is
        // approximated by capping the per-ack step at 0.5 segment).
        let acked_seg = ev.newly_acked as f64 / self.mss as f64;
        let mut inc = if target > cwnd {
            ((target - cwnd) / cwnd * acked_seg).min(0.5 * acked_seg)
        } else {
            // Stagnation: crawl at 1% of a segment per cwnd of ACKs.
            0.01 * acked_seg / cwnd
        };

        if self.cfg.tcp_friendliness {
            // Reno-equivalent growth: 3(1-β)/(1+β) segments per cwnd ACKed.
            let friendly_gain = 3.0 * (1.0 - self.cfg.beta) / (1.0 + self.cfg.beta);
            self.w_est += friendly_gain * acked_seg / cwnd;
            if self.w_est > cwnd + self.cwnd_cnt + inc {
                inc = self.w_est - cwnd - self.cwnd_cnt;
            }
        }

        self.cwnd_cnt += inc;
        if self.cwnd_cnt >= 1.0 {
            let whole = self.cwnd_cnt.floor();
            self.cwnd += (whole as u64) * self.mss;
            self.cwnd_cnt -= whole;
        }
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn on_ack(&mut self, ev: &AckEvent, in_recovery: bool) {
        if in_recovery || ev.newly_acked == 0 {
            return;
        }
        if self.cwnd < self.ssthresh {
            if self.cfg.hystart {
                if ev.round_start {
                    self.hystart.on_round_start();
                }
                if self.hystart.on_rtt_sample(ev.rtt) {
                    // Delay increase: end slow start here.
                    self.ssthresh = self.cwnd;
                    return;
                }
            }
            let inc = ev.newly_acked.min(self.mss);
            self.cwnd += inc;
            if self.cwnd >= self.ssthresh {
                self.cwnd = self.ssthresh;
            }
        } else {
            self.congestion_avoidance(ev);
        }
    }

    fn on_loss_event(&mut self, _ev: &LossEvent) {
        self.epoch_start = None;
        let cwnd = self.cwnd_seg();
        self.w_max = if cwnd < self.w_max && self.cfg.fast_convergence {
            cwnd * (2.0 - self.cfg.beta) / 2.0
        } else {
            cwnd
        };
        let new = ((self.cwnd as f64 * self.cfg.beta) as u64).max(self.min_cwnd());
        self.ssthresh = new;
        self.cwnd = new;
        self.cwnd_cnt = 0.0;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.undo = Some((self.cwnd, self.ssthresh, self.w_max));
        self.epoch_start = None;
        self.w_max = self.cwnd_seg();
        self.ssthresh = ((self.cwnd as f64 * self.cfg.beta) as u64).max(self.min_cwnd());
        self.cwnd = self.mss;
        self.cwnd_cnt = 0.0;
    }

    fn on_spurious_rto(&mut self, _now: SimTime) {
        if let Some((cwnd, ssthresh, w_max)) = self.undo.take() {
            self.cwnd = self.cwnd.max(cwnd);
            self.ssthresh = ssthresh;
            self.w_max = w_max;
            self.epoch_start = None;
        }
    }

    fn on_recovery_exit(&mut self, _now: SimTime) {
        self.cwnd = self.cwnd.max(self.min_cwnd());
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn pacing_rate(&self) -> Option<u64> {
        None
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn state_snapshot(&self) -> CcaState {
        CcaState {
            phase: if self.in_slow_start() { "slow_start" } else { "cubic" },
            cwnd: self.cwnd,
            ssthresh: self.ssthresh,
            pacing_rate: None,
            bw_estimate: None,
            pacing_gain: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1000;

    fn ack_at(now_ms: u64, acked: u64, rtt_ms: u64, round_start: bool) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO + SimDuration::from_millis(now_ms),
            rtt: SimDuration::from_millis(rtt_ms),
            min_rtt: SimDuration::from_millis(62),
            srtt: SimDuration::from_millis(rtt_ms),
            newly_acked: acked,
            newly_lost: 0,
            inflight: 0,
            delivery_rate: None,
            app_limited: false,
            delivered: 0,
            round_start,
            ecn_ce: false,
            is_app_limited_now: false,
        }
    }

    fn loss() -> LossEvent {
        LossEvent {
            now: SimTime::ZERO,
            inflight: 0,
            delivered: 0,
            min_rtt: SimDuration::from_millis(62),
            max_rtt_epoch: SimDuration::from_millis(70),
        }
    }

    #[test]
    fn slow_start_growth() {
        let mut c = Cubic::new(CubicConfig { hystart: false, ..Default::default() }, MSS);
        let w = c.cwnd();
        for _ in 0..10 {
            c.on_ack(&ack_at(0, MSS as u64, 62, false), false);
        }
        assert_eq!(c.cwnd(), w + 10 * MSS as u64);
    }

    #[test]
    fn loss_reduces_by_beta_and_sets_wmax() {
        let mut c = Cubic::new(CubicConfig::default(), MSS);
        c.cwnd = 100 * MSS as u64;
        c.ssthresh = c.cwnd;
        c.on_loss_event(&loss());
        assert_eq!(c.cwnd(), 70 * MSS as u64);
        assert!((c.w_max() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fast_convergence_lowers_wmax_on_back_to_back_losses() {
        let mut c = Cubic::new(CubicConfig::default(), MSS);
        c.cwnd = 100 * MSS as u64;
        c.ssthresh = c.cwnd;
        c.on_loss_event(&loss()); // w_max = 100, cwnd = 70
        c.on_loss_event(&loss()); // cwnd(70) < w_max(100): w_max = 70*(2-0.7)/2 = 45.5
        assert!((c.w_max() - 45.5).abs() < 1e-9);
    }

    #[test]
    fn k_is_cube_root_of_deficit_over_c() {
        let mut c = Cubic::new(CubicConfig { hystart: false, ..Default::default() }, MSS);
        c.cwnd = 100 * MSS as u64;
        c.ssthresh = c.cwnd;
        c.on_loss_event(&loss());
        // Trigger epoch start in CA.
        c.on_ack(&ack_at(100, MSS as u64, 62, false), false);
        // W_max=100, cwnd=70: K = cbrt((100-70)/0.4) = cbrt(75) ≈ 4.217 s.
        assert!((c.k() - 75f64.cbrt()).abs() < 1e-6, "K={}", c.k());
    }

    #[test]
    fn concave_region_grows_toward_wmax() {
        let mut c = Cubic::new(
            CubicConfig { hystart: false, tcp_friendliness: false, ..Default::default() },
            MSS,
        );
        c.cwnd = 100 * MSS as u64;
        c.ssthresh = c.cwnd;
        c.on_loss_event(&loss()); // cwnd -> 70
        let w0 = c.cwnd();
        // Feed two simulated RTTs of ACKs spread over K seconds.
        let mut t = 0u64;
        for _ in 0..200 {
            t += 25;
            let acked = c.cwnd() / 20;
            c.on_ack(&ack_at(t, acked, 62, false), false);
        }
        let w1 = c.cwnd();
        assert!(w1 > w0, "window must recover: {w0} -> {w1}");
        // After ~5 s (t > K ≈ 4.2 s) the window should be near/above W_max.
        assert!(w1 >= 95 * MSS as u64, "w1 = {}", w1 / MSS as u64);
    }

    #[test]
    fn convex_region_accelerates_past_wmax() {
        let mut c = Cubic::new(
            CubicConfig { hystart: false, tcp_friendliness: false, ..Default::default() },
            MSS,
        );
        c.cwnd = 100 * MSS as u64;
        c.ssthresh = c.cwnd;
        c.on_loss_event(&loss());
        // Push far past K.
        let mut t = 0u64;
        let mut grew_fast_late = 0u64;
        let mut prev = c.cwnd();
        for step in 0..400 {
            t += 25;
            let acked = c.cwnd() / 20;
            c.on_ack(&ack_at(t, acked, 62, false), false);
            if step == 300 {
                grew_fast_late = c.cwnd() - prev;
            }
            prev = c.cwnd();
        }
        assert!(c.cwnd() > 110 * MSS as u64, "convex growth expected, got {}", c.cwnd());
        let _ = grew_fast_late;
    }

    #[test]
    fn hystart_exits_slow_start_on_delay_increase() {
        let mut c = Cubic::new(CubicConfig::default(), MSS);
        // Round 1: baseline RTT 62 ms.
        c.on_ack(&ack_at(0, MSS as u64, 62, true), false);
        for i in 1..10 {
            c.on_ack(&ack_at(i, MSS as u64, 62, false), false);
        }
        assert!(c.in_slow_start());
        // Round 2: RTT inflated to 100 ms (queue building).
        c.on_ack(&ack_at(62, MSS as u64, 100, true), false);
        for i in 1..10 {
            c.on_ack(&ack_at(62 + i, MSS as u64, 100, false), false);
        }
        assert!(!c.in_slow_start(), "HyStart must cap ssthresh");
        assert_eq!(c.ssthresh(), c.cwnd());
    }

    #[test]
    fn hystart_tolerates_stable_rtt() {
        let mut c = Cubic::new(CubicConfig::default(), MSS);
        for round in 0..5 {
            c.on_ack(&ack_at(round * 62, MSS as u64, 62, true), false);
            for i in 1..12 {
                c.on_ack(&ack_at(round * 62 + i, MSS as u64, 62, false), false);
            }
        }
        assert!(c.in_slow_start(), "no delay increase, no exit");
    }

    #[test]
    fn rto_resets_to_one_segment() {
        let mut c = Cubic::new(CubicConfig::default(), MSS);
        c.cwnd = 50 * MSS as u64;
        c.on_rto(SimTime::ZERO);
        assert_eq!(c.cwnd(), MSS as u64);
        assert_eq!(c.ssthresh(), 35 * MSS as u64);
    }

    #[test]
    fn friendly_region_tracks_reno_under_small_bdp() {
        // With TCP friendliness on, CUBIC should not grow slower than the
        // Reno estimate right after a loss at small windows.
        let mut c = Cubic::new(CubicConfig { hystart: false, ..Default::default() }, MSS);
        c.cwnd = 20 * MSS as u64;
        c.ssthresh = c.cwnd;
        c.on_loss_event(&loss()); // cwnd -> 14
        let w0 = c.cwnd();
        let mut t = 0;
        for _ in 0..140 {
            t += 4;
            c.on_ack(&ack_at(t, MSS as u64, 62, false), false);
        }
        // 10 cwnd's worth of ACKs: Reno-style would add ~ 0.53*10 ≈ 5 MSS.
        assert!(c.cwnd() >= w0 + 3 * MSS as u64, "friendly growth too slow: {} -> {}", w0, c.cwnd());
    }
}
