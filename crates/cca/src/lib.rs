//! # elephants-cca
//!
//! From-scratch implementations of the five TCP congestion-control
//! algorithms the paper studies:
//!
//! | CCA | Source | Character |
//! |-----|--------|-----------|
//! | [`Reno`] | RFC 5681 / Jacobson 1988 | loss-based AIMD |
//! | [`Cubic`] | Ha, Rhee & Xu 2008, RFC 8312 (+ HyStart) | loss-based, cubic growth |
//! | [`Htcp`] | Leith & Shorten 2004 | loss-based, adaptive AIMD for high BDP |
//! | [`BbrV1`] | Cardwell et al. 2017 | model-based (max-bw / min-rtt) |
//! | [`BbrV2`] | Cardwell et al. 2019 (v2alpha) | model-based + loss/ECN bounds |
//!
//! The algorithms are pure state machines behind the [`CongestionControl`]
//! trait: the `elephants-tcp` crate feeds them [`AckEvent`]s (with delivery
//! -rate samples, RACK-style loss counts and round markers) and reads back
//! `cwnd()` / `pacing_rate()`. Nothing here depends on the simulator's event
//! loop, which makes each algorithm unit-testable in isolation.

pub mod bbr1;
pub mod bbr2;
pub mod cubic;
pub mod filters;
pub mod htcp;
pub mod reno;

pub use bbr1::{BbrV1, BbrV1Config, PROBE_BW_GAINS};
pub use bbr2::{BbrV2, BbrV2Config};
pub use cubic::{Cubic, CubicConfig};
pub use filters::{WindowedMaxByRound, WindowedMinByTime};
pub use htcp::{Htcp, HtcpConfig};
pub use reno::Reno;

use elephants_netsim::{CheckFailure, SimDuration, SimTime};
use elephants_json::impl_json_unit_enum;

/// Everything a congestion controller learns from one incoming ACK.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent {
    /// Arrival time of the ACK.
    pub now: SimTime,
    /// RTT sample carried by this ACK (most recently acked segment).
    pub rtt: SimDuration,
    /// Connection-lifetime minimum RTT.
    pub min_rtt: SimDuration,
    /// Smoothed RTT.
    pub srtt: SimDuration,
    /// Bytes newly acknowledged (cumulative + SACK) by this ACK.
    pub newly_acked: u64,
    /// Bytes newly marked lost while processing this ACK.
    pub newly_lost: u64,
    /// Bytes in flight *after* processing this ACK.
    pub inflight: u64,
    /// Delivery-rate sample (bits/s), if the rate sampler produced one.
    pub delivery_rate: Option<u64>,
    /// Whether the delivery-rate sample was application-limited.
    pub app_limited: bool,
    /// Total bytes delivered over the connection so far.
    pub delivered: u64,
    /// True when this ACK starts a new round trip (packet sent after the
    /// previous round's end was acked).
    pub round_start: bool,
    /// The receiver echoed an ECN Congestion Experienced mark.
    pub ecn_ce: bool,
    /// Whether the sender currently has less data to send than cwnd allows.
    pub is_app_limited_now: bool,
}

/// A fast-retransmit-triggering loss episode (once per recovery).
#[derive(Debug, Clone, Copy)]
pub struct LossEvent {
    /// When recovery began.
    pub now: SimTime,
    /// Bytes in flight when the loss was detected.
    pub inflight: u64,
    /// Bytes delivered so far (for throughput estimates).
    pub delivered: u64,
    /// Connection minimum RTT.
    pub min_rtt: SimDuration,
    /// Maximum RTT seen since the previous loss event.
    pub max_rtt_epoch: SimDuration,
}

/// A TCP congestion-control algorithm.
///
/// All byte quantities are real bytes; `mss` is fixed per connection.
pub trait CongestionControl: Send {
    /// Algorithm name (e.g. `"cubic"`).
    fn name(&self) -> &'static str;

    /// Process an incoming ACK. Called for every ACK, including during
    /// recovery (implementations may ignore growth while `in_recovery`).
    fn on_ack(&mut self, ev: &AckEvent, in_recovery: bool);

    /// A new loss episode detected via duplicate ACKs / SACK (fast
    /// retransmit); called once per episode.
    fn on_loss_event(&mut self, ev: &LossEvent);

    /// Retransmission timeout fired.
    fn on_rto(&mut self, now: SimTime);

    /// The last RTO was detected to be spurious (F-RTO/Eifel): the
    /// "lost" flight was merely delayed. Implementations should undo the
    /// window collapse.
    fn on_spurious_rto(&mut self, _now: SimTime) {}

    /// Recovery completed (all losses repaired).
    fn on_recovery_exit(&mut self, now: SimTime);

    /// Current congestion window in bytes.
    fn cwnd(&self) -> u64;

    /// Current pacing rate in bits/s; `None` means pure ACK clocking.
    fn pacing_rate(&self) -> Option<u64>;

    /// Slow-start threshold in bytes (`u64::MAX` when untouched).
    fn ssthresh(&self) -> u64;

    /// Whether the algorithm considers itself in slow start / startup.
    fn in_slow_start(&self) -> bool;

    /// Estimated bottleneck bandwidth (bits/s), for model-based CCAs.
    fn bw_estimate(&self) -> Option<u64> {
        None
    }

    /// Telemetry snapshot for the flight recorder.
    ///
    /// Must be a pure read — no state mutation. The default derives a
    /// generic `"slow_start"`/`"avoidance"` phase from [`Self::in_slow_start`];
    /// implementations override it with their real phase machine (BBR
    /// encodes the ProbeBW pacing gain in the label, e.g. `"probe_bw:1.25"`,
    /// so cycle transitions are countable from a recorded series).
    fn state_snapshot(&self) -> CcaState {
        CcaState {
            phase: if self.in_slow_start() { "slow_start" } else { "avoidance" },
            cwnd: self.cwnd(),
            ssthresh: self.ssthresh(),
            pacing_rate: self.pacing_rate(),
            bw_estimate: self.bw_estimate(),
            pacing_gain: None,
        }
    }

    /// Invariant probe for the strict-mode checker. Read-only — must not
    /// mutate state. The default enforces the generic contract via
    /// [`generic_cca_failures`]; implementations layer algorithm-specific
    /// structure on top (BBR's gain-cycle index range, bandwidth-filter
    /// monotonicity) and must include the generic checks too.
    fn check_invariants(&self, mss: u32) -> Vec<CheckFailure> {
        generic_cca_failures(self.cwnd(), &self.state_snapshot(), mss)
    }
}

/// The generic congestion-controller contract every algorithm must hold:
/// cwnd at least one MSS, a finite positive pacing gain, and — for paced
/// CCAs — a nonzero pacing rate (a paced flow with rate 0 never sends
/// again). Shared by the trait default and algorithm-specific overrides.
pub fn generic_cca_failures(cwnd: u64, snap: &CcaState, mss: u32) -> Vec<CheckFailure> {
    let mut fails = Vec::new();
    if cwnd < mss as u64 {
        fails.push(CheckFailure::new(
            "cca_cwnd_floor",
            format!("cwnd {cwnd} below one MSS ({mss})"),
        ));
    }
    if let Some(g) = snap.pacing_gain {
        if !g.is_finite() || g <= 0.0 {
            fails.push(CheckFailure::new(
                "cca_pacing_gain",
                format!("pacing gain {g} not finite and positive"),
            ));
        }
    }
    if snap.pacing_rate == Some(0) {
        fails.push(CheckFailure::new(
            "cca_pacing_rate",
            "paced CCA reports pacing rate 0 (flow would stall forever)".to_string(),
        ));
    }
    fails
}

/// One telemetry read-out of a congestion controller (see
/// [`CongestionControl::state_snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcaState {
    /// Phase label; stable strings, suitable for serialization.
    pub phase: &'static str,
    /// Congestion window, bytes.
    pub cwnd: u64,
    /// Slow-start threshold, bytes (`u64::MAX` when untouched).
    pub ssthresh: u64,
    /// Pacing rate, bits/s (`None` = ACK-clocked).
    pub pacing_rate: Option<u64>,
    /// Bottleneck-bandwidth estimate, bits/s (model-based CCAs).
    pub bw_estimate: Option<u64>,
    /// Current pacing gain (BBR), if the CCA uses one.
    pub pacing_gain: Option<f64>,
}

/// Which congestion controller to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcaKind {
    /// TCP Reno.
    Reno,
    /// TCP CUBIC (Linux default).
    Cubic,
    /// Hamilton TCP.
    Htcp,
    /// BBR version 1.
    BbrV1,
    /// BBR version 2 (v2alpha).
    BbrV2,
}

impl_json_unit_enum!(CcaKind { Reno, Cubic, Htcp, BbrV1, BbrV2 });

impl CcaKind {
    /// The five CCAs in the paper's grid.
    pub const ALL: [CcaKind; 5] =
        [CcaKind::BbrV1, CcaKind::BbrV2, CcaKind::Htcp, CcaKind::Reno, CcaKind::Cubic];

    /// Lower-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            CcaKind::Reno => "reno",
            CcaKind::Cubic => "cubic",
            CcaKind::Htcp => "htcp",
            CcaKind::BbrV1 => "bbr1",
            CcaKind::BbrV2 => "bbr2",
        }
    }

    /// Paper-style display name.
    pub fn pretty(self) -> &'static str {
        match self {
            CcaKind::Reno => "Reno",
            CcaKind::Cubic => "CUBIC",
            CcaKind::Htcp => "HTCP",
            CcaKind::BbrV1 => "BBRv1",
            CcaKind::BbrV2 => "BBRv2",
        }
    }
}

impl std::fmt::Display for CcaKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CcaKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "reno" => Ok(CcaKind::Reno),
            "cubic" => Ok(CcaKind::Cubic),
            "htcp" | "h-tcp" => Ok(CcaKind::Htcp),
            "bbr1" | "bbrv1" | "bbr" => Ok(CcaKind::BbrV1),
            "bbr2" | "bbrv2" => Ok(CcaKind::BbrV2),
            other => Err(format!("unknown CCA '{other}'")),
        }
    }
}

/// Instantiate a congestion controller.
pub fn build_cca(kind: CcaKind, mss: u32) -> Box<dyn CongestionControl> {
    build_cca_seeded(kind, mss, 0)
}

/// Instantiate a congestion controller with a per-flow seed.
///
/// The seed only feeds the BBR probe-phase randomizers (ProbeBW cycle phase
/// in v1, cruise-wait jitter in v2); giving each flow a distinct seed avoids
/// the artificial probe synchronization a shared default would create.
pub fn build_cca_seeded(kind: CcaKind, mss: u32, seed: u64) -> Box<dyn CongestionControl> {
    match kind {
        CcaKind::Reno => Box::new(Reno::new(mss)),
        CcaKind::Cubic => Box::new(Cubic::new(CubicConfig::default(), mss)),
        CcaKind::Htcp => Box::new(Htcp::new(HtcpConfig::default(), mss)),
        CcaKind::BbrV1 => Box::new(BbrV1::new(BbrV1Config { seed, ..Default::default() }, mss)),
        CcaKind::BbrV2 => Box::new(BbrV2::new(BbrV2Config { seed, ..Default::default() }, mss)),
    }
}

/// Initial congestion window: 10 segments (Linux IW10, RFC 6928).
pub const INITIAL_CWND_SEGMENTS: u64 = 10;

/// Floor for the congestion window: 2 segments.
pub const MIN_CWND_SEGMENTS: u64 = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parsing_round_trips() {
        for k in CcaKind::ALL {
            assert_eq!(k.name().parse::<CcaKind>().unwrap(), k);
        }
        assert_eq!("bbr".parse::<CcaKind>().unwrap(), CcaKind::BbrV1);
        assert!("quic".parse::<CcaKind>().is_err());
    }

    #[test]
    fn factory_builds_all_with_iw10() {
        for k in CcaKind::ALL {
            let cca = build_cca(k, 8900);
            assert_eq!(cca.name(), k.name());
            assert_eq!(cca.cwnd(), 10 * 8900, "{k} must start at IW10");
        }
    }

    #[test]
    fn loss_based_ccas_do_not_pace() {
        for k in [CcaKind::Reno, CcaKind::Cubic, CcaKind::Htcp] {
            assert!(build_cca(k, 1500).pacing_rate().is_none());
        }
    }

    #[test]
    fn bbr_paces_from_the_start() {
        for k in [CcaKind::BbrV1, CcaKind::BbrV2] {
            assert!(build_cca(k, 1500).pacing_rate().is_some(), "{k}");
        }
    }
}
