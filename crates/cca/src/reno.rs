//! TCP Reno (RFC 5681): slow start, AIMD congestion avoidance.

use crate::{AckEvent, CcaState, CongestionControl, LossEvent, INITIAL_CWND_SEGMENTS, MIN_CWND_SEGMENTS};
use elephants_netsim::SimTime;

/// TCP Reno congestion control.
#[derive(Debug, Clone)]
pub struct Reno {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// Byte accumulator for sub-MSS congestion-avoidance increments.
    acked_accum: u64,
    /// (cwnd, ssthresh) before the last RTO, for spurious-RTO undo.
    undo: Option<(u64, u64)>,
}

impl Reno {
    /// A fresh Reno controller with IW10.
    pub fn new(mss: u32) -> Self {
        let mss = mss as u64;
        Reno { mss, cwnd: INITIAL_CWND_SEGMENTS * mss, ssthresh: u64::MAX, acked_accum: 0, undo: None }
    }

    fn min_cwnd(&self) -> u64 {
        MIN_CWND_SEGMENTS * self.mss
    }
}

impl CongestionControl for Reno {
    fn name(&self) -> &'static str {
        "reno"
    }

    fn on_ack(&mut self, ev: &AckEvent, in_recovery: bool) {
        if in_recovery || ev.newly_acked == 0 {
            return;
        }
        if self.cwnd < self.ssthresh {
            // Slow start: grow by the bytes acknowledged (RFC 5681 §3.1,
            // with the L = 1 SMSS per-ACK cap).
            let inc = ev.newly_acked.min(self.mss);
            self.cwnd = (self.cwnd + inc).min(self.ssthresh);
        } else {
            // Congestion avoidance: one MSS per cwnd of acknowledged data.
            self.acked_accum += ev.newly_acked;
            if self.acked_accum >= self.cwnd {
                self.acked_accum -= self.cwnd;
                self.cwnd += self.mss;
            }
        }
    }

    fn on_loss_event(&mut self, _ev: &LossEvent) {
        self.ssthresh = (self.cwnd / 2).max(self.min_cwnd());
        self.cwnd = self.ssthresh;
        self.acked_accum = 0;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.undo = Some((self.cwnd, self.ssthresh));
        self.ssthresh = (self.cwnd / 2).max(self.min_cwnd());
        self.cwnd = self.mss;
        self.acked_accum = 0;
    }

    fn on_spurious_rto(&mut self, _now: SimTime) {
        if let Some((cwnd, ssthresh)) = self.undo.take() {
            self.cwnd = self.cwnd.max(cwnd);
            self.ssthresh = ssthresh;
        }
    }

    fn on_recovery_exit(&mut self, _now: SimTime) {
        self.cwnd = self.cwnd.max(self.min_cwnd());
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn pacing_rate(&self) -> Option<u64> {
        None
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn state_snapshot(&self) -> CcaState {
        CcaState {
            phase: if self.in_slow_start() { "slow_start" } else { "avoidance" },
            cwnd: self.cwnd,
            ssthresh: self.ssthresh,
            pacing_rate: None,
            bw_estimate: None,
            pacing_gain: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elephants_netsim::SimDuration;

    pub(crate) fn ack(newly_acked: u64) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO,
            rtt: SimDuration::from_millis(62),
            min_rtt: SimDuration::from_millis(62),
            srtt: SimDuration::from_millis(62),
            newly_acked,
            newly_lost: 0,
            inflight: 0,
            delivery_rate: None,
            app_limited: false,
            delivered: 0,
            round_start: false,
            ecn_ce: false,
            is_app_limited_now: false,
        }
    }

    fn loss(inflight: u64) -> LossEvent {
        LossEvent {
            now: SimTime::ZERO,
            inflight,
            delivered: 0,
            min_rtt: SimDuration::from_millis(62),
            max_rtt_epoch: SimDuration::from_millis(70),
        }
    }

    const MSS: u32 = 1000;

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut r = Reno::new(MSS);
        let start = r.cwnd();
        // One round: every in-flight segment acked grows cwnd by 1 MSS.
        for _ in 0..10 {
            r.on_ack(&ack(MSS as u64), false);
        }
        assert_eq!(r.cwnd(), start + 10 * MSS as u64);
        assert!(r.in_slow_start());
    }

    #[test]
    fn congestion_avoidance_adds_one_mss_per_cwnd() {
        let mut r = Reno::new(MSS);
        r.ssthresh = r.cwnd; // force CA
        let start = r.cwnd();
        let acks_needed = start / MSS as u64;
        for _ in 0..acks_needed {
            r.on_ack(&ack(MSS as u64), false);
        }
        assert_eq!(r.cwnd(), start + MSS as u64);
        assert!(!r.in_slow_start());
    }

    #[test]
    fn loss_halves_cwnd() {
        let mut r = Reno::new(MSS);
        r.cwnd = 100 * MSS as u64;
        r.ssthresh = r.cwnd;
        r.on_loss_event(&loss(r.cwnd));
        assert_eq!(r.cwnd(), 50 * MSS as u64);
        assert_eq!(r.ssthresh(), 50 * MSS as u64);
    }

    #[test]
    fn rto_collapses_to_one_segment() {
        let mut r = Reno::new(MSS);
        r.cwnd = 100 * MSS as u64;
        r.on_rto(SimTime::ZERO);
        assert_eq!(r.cwnd(), MSS as u64);
        assert_eq!(r.ssthresh(), 50 * MSS as u64);
        assert!(r.in_slow_start());
    }

    #[test]
    fn cwnd_never_below_floor_after_loss() {
        let mut r = Reno::new(MSS);
        r.cwnd = 2 * MSS as u64;
        r.on_loss_event(&loss(r.cwnd));
        assert_eq!(r.cwnd(), 2 * MSS as u64); // floor = 2 MSS
    }

    #[test]
    fn growth_frozen_during_recovery() {
        let mut r = Reno::new(MSS);
        let w = r.cwnd();
        for _ in 0..50 {
            r.on_ack(&ack(MSS as u64), true);
        }
        assert_eq!(r.cwnd(), w);
    }

    #[test]
    fn slow_start_caps_at_ssthresh() {
        let mut r = Reno::new(MSS);
        r.ssthresh = 12 * MSS as u64;
        for _ in 0..10 {
            r.on_ack(&ack(MSS as u64), false);
        }
        assert_eq!(r.cwnd(), 12 * MSS as u64);
    }
}
