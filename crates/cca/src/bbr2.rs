//! BBR version 2 (Cardwell et al., IETF 106 v2alpha).
//!
//! BBRv2 keeps BBRv1's max-bandwidth / min-RTT model but bounds it with
//! explicit loss/ECN feedback:
//!
//! * `inflight_hi` — the highest inflight volume that did **not** produce a
//!   loss rate above `loss_thresh` (2 %). Probing that exceeds the threshold
//!   cuts `inflight_hi` by `beta` (30 %). This is why, in the paper, BBRv2
//!   under deep-buffer FIFO fares *worse* against CUBIC than BBRv1: CUBIC's
//!   buffer occupancy forces drop rates over 2 % and BBRv2 backs off, while
//!   loss-blind BBRv1 holds its ground.
//! * Under RED's gentle early dropping the per-round loss rate rarely
//!   crosses 2 %, so BBRv2 (like BBRv1) sails over CUBIC — the paper's RED
//!   takeover result.
//! * ProbeBW is restructured into DOWN → CRUISE → REFILL → UP, cruising
//!   with 15 % headroom below `inflight_hi`.

use crate::filters::WindowedMaxByRound;
use crate::{AckEvent, CcaState, CongestionControl, LossEvent, INITIAL_CWND_SEGMENTS};
use elephants_netsim::{SimDuration, SimTime};
use elephants_json::impl_json_struct;

/// BBRv2 tuning constants (defaults follow the v2alpha kernel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BbrV2Config {
    /// Startup/Drain pacing gain.
    pub high_gain: f64,
    /// Steady-state cwnd gain.
    pub cwnd_gain: f64,
    /// ProbeBW UP pacing gain.
    pub up_gain: f64,
    /// ProbeBW DOWN pacing gain.
    pub down_gain: f64,
    /// Loss-rate threshold that marks inflight "too high" (2 %).
    pub loss_thresh: f64,
    /// Multiplicative cut applied to `inflight_hi` on excessive loss.
    pub beta: f64,
    /// Headroom kept below `inflight_hi` while cruising (15 %).
    pub headroom: f64,
    /// Max-bandwidth filter window, in rounds.
    pub bw_window_rounds: u64,
    /// Min-RTT validity window (BBRv2 probes RTT every 5 s).
    pub rtprop_window: SimDuration,
    /// Time at the reduced window in ProbeRTT.
    pub probe_rtt_duration: SimDuration,
    /// Base wait in CRUISE before the next bandwidth probe.
    pub probe_wait_base: SimDuration,
    /// Random extra wait added to `probe_wait_base` (0..this).
    pub probe_wait_rand: SimDuration,
    /// Rounds of <25 % growth that mark the pipe full in Startup.
    pub full_bw_count: u32,
    /// Growth threshold for the pipe-full check.
    pub full_bw_thresh: f64,
    /// ECN CE-fraction threshold treated like excessive loss.
    pub ecn_thresh: f64,
    /// Seed for deterministic probe scheduling.
    pub seed: u64,
}

impl_json_struct!(BbrV2Config {
    high_gain,
    cwnd_gain,
    up_gain,
    down_gain,
    loss_thresh,
    beta,
    headroom,
    bw_window_rounds,
    rtprop_window,
    probe_rtt_duration,
    probe_wait_base,
    probe_wait_rand,
    full_bw_count,
    full_bw_thresh,
    ecn_thresh,
    seed,
});

impl Default for BbrV2Config {
    fn default() -> Self {
        BbrV2Config {
            high_gain: 2.885,
            cwnd_gain: 2.0,
            up_gain: 1.25,
            down_gain: 0.75,
            loss_thresh: 0.02,
            beta: 0.3,
            headroom: 0.15,
            bw_window_rounds: 10,
            rtprop_window: SimDuration::from_secs(5),
            probe_rtt_duration: SimDuration::from_millis(200),
            probe_wait_base: SimDuration::from_secs(2),
            probe_wait_rand: SimDuration::from_secs(1),
            full_bw_count: 3,
            full_bw_thresh: 1.25,
            ecn_thresh: 0.5,
            seed: 0,
        }
    }
}

/// Top-level BBRv2 mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bbr2Mode {
    /// Exponential bandwidth search.
    Startup,
    /// Queue drain after Startup.
    Drain,
    /// Steady state (with a [`ProbePhase`]).
    ProbeBw,
    /// Floor-RTT re-measurement.
    ProbeRtt,
}

/// ProbeBW sub-phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbePhase {
    /// Deflate the queue (gain 0.75).
    Down,
    /// Cruise with headroom (gain 1.0).
    Cruise,
    /// Refill the pipe to `inflight_hi` (gain 1.0).
    Refill,
    /// Probe for more bandwidth (gain 1.25).
    Up,
}

/// The BBRv2 congestion controller.
#[derive(Debug, Clone)]
pub struct BbrV2 {
    cfg: BbrV2Config,
    mss: u64,
    mode: Bbr2Mode,
    phase: ProbePhase,
    cwnd: u64,
    prior_cwnd: u64,
    pacing_gain: f64,
    // Model.
    bw_filter: WindowedMaxByRound,
    rtprop: SimDuration,
    rtprop_stamp: SimTime,
    rtprop_valid: bool,
    rtprop_expired: bool,
    round_count: u64,
    // Inflight bounds.
    inflight_hi: u64,
    // Per-round loss/ECN accounting.
    loss_in_round: u64,
    delivered_in_round: u64,
    ce_in_round: u64,
    loss_events_in_round: u32,
    loss_round_rate: f64,
    loss_round_events: u32,
    ce_round_rate: f64,
    // Startup full-pipe detection.
    full_bw: u64,
    full_bw_cnt: u32,
    full_pipe: bool,
    // Phase clocks.
    phase_stamp: SimTime,
    cruise_wait: SimDuration,
    refill_round: u64,
    up_rounds: u32,
    // ProbeRTT bookkeeping.
    probe_rtt_done_stamp: Option<SimTime>,
    probe_rtt_round_done: bool,
    probe_rtt_enter_round: u64,
    rng_state: u64,
}

impl BbrV2 {
    /// A fresh BBRv2 controller with IW10.
    pub fn new(cfg: BbrV2Config, mss: u32) -> Self {
        let mss = mss as u64;
        BbrV2 {
            mss,
            mode: Bbr2Mode::Startup,
            phase: ProbePhase::Cruise,
            cwnd: INITIAL_CWND_SEGMENTS * mss,
            prior_cwnd: 0,
            pacing_gain: cfg.high_gain,
            bw_filter: WindowedMaxByRound::new(cfg.bw_window_rounds),
            rtprop: SimDuration::MAX,
            rtprop_stamp: SimTime::ZERO,
            rtprop_valid: false,
            rtprop_expired: false,
            round_count: 0,
            inflight_hi: u64::MAX,
            loss_in_round: 0,
            delivered_in_round: 0,
            ce_in_round: 0,
            loss_events_in_round: 0,
            loss_round_rate: 0.0,
            loss_round_events: 0,
            ce_round_rate: 0.0,
            full_bw: 0,
            full_bw_cnt: 0,
            full_pipe: false,
            phase_stamp: SimTime::ZERO,
            cruise_wait: cfg.probe_wait_base,
            refill_round: 0,
            up_rounds: 0,
            probe_rtt_done_stamp: None,
            probe_rtt_round_done: false,
            probe_rtt_enter_round: 0,
            rng_state: cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            cfg,
        }
    }

    /// Current mode (test hook).
    pub fn mode(&self) -> Bbr2Mode {
        self.mode
    }

    /// Current ProbeBW phase (test hook).
    pub fn phase(&self) -> ProbePhase {
        self.phase
    }

    /// Current `inflight_hi` bound in bytes (`u64::MAX` = unset).
    pub fn inflight_hi(&self) -> u64 {
        self.inflight_hi
    }

    /// Bottleneck bandwidth estimate (bits/s).
    pub fn btlbw(&self) -> Option<u64> {
        self.bw_filter.get()
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn min_pipe_cwnd(&self) -> u64 {
        4 * self.mss
    }

    fn bdp_bytes(&self, gain: f64) -> u64 {
        let (Some(bw), true) = (self.bw_filter.get(), self.rtprop_valid) else {
            return INITIAL_CWND_SEGMENTS * self.mss;
        };
        ((gain * bw as f64 * self.rtprop.as_secs_f64() / 8.0) as u64).max(self.min_pipe_cwnd())
    }

    fn update_model(&mut self, ev: &AckEvent) {
        if ev.round_start {
            // Commit the finished round's loss/CE rates.
            if self.delivered_in_round > 0 {
                self.loss_round_rate = self.loss_in_round as f64 / self.delivered_in_round as f64;
                self.loss_round_events = self.loss_events_in_round;
                self.ce_round_rate = self.ce_in_round as f64 / self.delivered_in_round as f64;
            }
            self.loss_in_round = 0;
            self.delivered_in_round = 0;
            self.ce_in_round = 0;
            self.loss_events_in_round = 0;
            self.round_count += 1;
        }
        self.loss_in_round += ev.newly_lost;
        if ev.newly_lost > 0 {
            self.loss_events_in_round += 1;
        }
        self.delivered_in_round += ev.newly_acked;
        if ev.ecn_ce {
            self.ce_in_round += ev.newly_acked;
        }
        if let Some(rate) = ev.delivery_rate {
            if !ev.app_limited || Some(rate) >= self.bw_filter.get() {
                self.bw_filter.update(self.round_count, rate);
            }
        }
        let expired = self.rtprop_valid && ev.now.since(self.rtprop_stamp) > self.cfg.rtprop_window;
        self.rtprop_expired = expired;
        if !self.rtprop_valid || ev.rtt <= self.rtprop || expired {
            self.rtprop = ev.rtt;
            self.rtprop_stamp = ev.now;
            self.rtprop_valid = true;
        }
    }

    /// Whether recent loss/ECN says the inflight volume is too high.
    ///
    /// Mirrors the v2alpha robustness gating: a handful of isolated losses
    /// must NOT trigger a cut (that is the RED regime where BBRv2 is meant
    /// to sail on); only a loss *rate* above `loss_thresh` backed by at
    /// least `LOSS_EVENTS_MIN` distinct loss events in the round counts.
    fn inflight_too_high(&self) -> bool {
        const LOSS_EVENTS_MIN: u32 = 4;
        let committed = self.loss_round_events >= LOSS_EVENTS_MIN
            && self.loss_round_rate > self.cfg.loss_thresh;
        let live = self.loss_events_in_round >= LOSS_EVENTS_MIN
            && self.delivered_in_round > 16 * self.mss
            && (self.loss_in_round as f64
                > self.cfg.loss_thresh * self.delivered_in_round as f64);
        let ecn = self.ce_round_rate > self.cfg.ecn_thresh;
        committed || live || ecn
    }

    /// Cut `inflight_hi` after probing too hard (v2alpha
    /// `bbr2_handle_inflight_too_high`).
    fn handle_inflight_too_high(&mut self, ev: &AckEvent) {
        let base = ev.inflight.max(self.bdp_bytes(1.0));
        self.inflight_hi = ((base as f64 * (1.0 - self.cfg.beta)) as u64).max(self.min_pipe_cwnd());
        // Reset the live counters so one bad round is punished once.
        self.loss_round_rate = 0.0;
        self.loss_round_events = 0;
        self.loss_in_round = 0;
        self.delivered_in_round = 0;
        self.ce_in_round = 0;
        self.loss_events_in_round = 0;
    }

    fn enter_phase(&mut self, phase: ProbePhase, now: SimTime) {
        self.phase = phase;
        self.phase_stamp = now;
        self.pacing_gain = match phase {
            ProbePhase::Down => self.cfg.down_gain,
            ProbePhase::Cruise | ProbePhase::Refill => 1.0,
            ProbePhase::Up => self.cfg.up_gain,
        };
        match phase {
            ProbePhase::Cruise => {
                let extra = self.cfg.probe_wait_rand.as_nanos();
                let r = if extra > 0 { self.next_rand() % extra } else { 0 };
                self.cruise_wait = self.cfg.probe_wait_base + SimDuration::from_nanos(r);
            }
            ProbePhase::Refill => {
                self.refill_round = self.round_count;
            }
            ProbePhase::Up => {
                self.up_rounds = 0;
            }
            ProbePhase::Down => {}
        }
    }

    fn probe_bw_step(&mut self, ev: &AckEvent) {
        match self.phase {
            ProbePhase::Down => {
                // Leave once the queue we built is drained.
                if ev.inflight <= self.bdp_bytes(1.0)
                    || ev.now.since(self.phase_stamp) > self.rtprop * 2
                {
                    self.enter_phase(ProbePhase::Cruise, ev.now);
                }
            }
            ProbePhase::Cruise => {
                if ev.now.since(self.phase_stamp) >= self.cruise_wait {
                    self.enter_phase(ProbePhase::Refill, ev.now);
                }
            }
            ProbePhase::Refill => {
                // One full round of refilling, then probe up.
                if self.round_count > self.refill_round {
                    self.enter_phase(ProbePhase::Up, ev.now);
                }
            }
            ProbePhase::Up => {
                if self.inflight_too_high() {
                    self.handle_inflight_too_high(ev);
                    self.enter_phase(ProbePhase::Down, ev.now);
                    return;
                }
                if ev.round_start {
                    self.up_rounds += 1;
                    // Probing sustained without excessive loss: raise the
                    // ceiling so the next cruise can use what we found.
                    if self.inflight_hi != u64::MAX && ev.inflight >= self.inflight_hi {
                        let step = self.mss << self.up_rounds.min(12);
                        self.inflight_hi = self.inflight_hi.saturating_add(step);
                    }
                }
                if ev.now.since(self.phase_stamp) > self.rtprop
                    && ev.inflight >= self.bdp_bytes(self.cfg.up_gain)
                {
                    self.enter_phase(ProbePhase::Down, ev.now);
                }
            }
        }
    }

    fn check_probe_rtt(&mut self, ev: &AckEvent) {
        if self.mode != Bbr2Mode::ProbeRtt && self.rtprop_valid && self.rtprop_expired {
            self.mode = Bbr2Mode::ProbeRtt;
            self.pacing_gain = 1.0;
            self.prior_cwnd = self.prior_cwnd.max(self.cwnd);
            self.probe_rtt_done_stamp = None;
            self.probe_rtt_round_done = false;
            self.probe_rtt_enter_round = self.round_count;
        }
        if self.mode == Bbr2Mode::ProbeRtt {
            let floor = self.probe_rtt_cwnd();
            if self.probe_rtt_done_stamp.is_none() && ev.inflight <= floor {
                self.probe_rtt_done_stamp = Some(ev.now + self.cfg.probe_rtt_duration);
            }
            if ev.round_start && self.round_count > self.probe_rtt_enter_round {
                self.probe_rtt_round_done = true;
            }
            if let Some(done) = self.probe_rtt_done_stamp {
                if self.probe_rtt_round_done && ev.now >= done {
                    self.rtprop_stamp = ev.now;
                    self.cwnd = self.cwnd.max(self.prior_cwnd);
                    if self.full_pipe {
                        self.mode = Bbr2Mode::ProbeBw;
                        self.enter_phase(ProbePhase::Cruise, ev.now);
                    } else {
                        self.mode = Bbr2Mode::Startup;
                        self.pacing_gain = self.cfg.high_gain;
                    }
                }
            }
        }
    }

    /// ProbeRTT window floor: half the estimated BDP (v2 probes less
    /// brutally than v1's 4-segment floor).
    fn probe_rtt_cwnd(&self) -> u64 {
        (self.bdp_bytes(0.5)).max(self.min_pipe_cwnd())
    }

    fn check_full_pipe(&mut self, ev: &AckEvent) {
        if self.full_pipe || !ev.round_start || ev.app_limited {
            return;
        }
        let Some(bw) = self.bw_filter.get() else { return };
        if bw as f64 >= self.full_bw as f64 * self.cfg.full_bw_thresh {
            self.full_bw = bw;
            self.full_bw_cnt = 0;
            return;
        }
        self.full_bw_cnt += 1;
        if self.full_bw_cnt >= self.cfg.full_bw_count {
            self.full_pipe = true;
        }
    }

    fn effective_inflight_cap(&self) -> u64 {
        if self.inflight_hi == u64::MAX {
            return u64::MAX;
        }
        match (self.mode, self.phase) {
            // Cruise keeps headroom below the ceiling so other flows can
            // probe (v2alpha `bbr2_inflight_with_headroom`).
            (Bbr2Mode::ProbeBw, ProbePhase::Cruise) => {
                ((self.inflight_hi as f64 * (1.0 - self.cfg.headroom)) as u64)
                    .max(self.min_pipe_cwnd())
            }
            _ => self.inflight_hi,
        }
    }

    fn set_cwnd(&mut self, ev: &AckEvent) {
        if self.mode == Bbr2Mode::ProbeRtt {
            self.cwnd = self.cwnd.min(self.probe_rtt_cwnd());
            return;
        }
        let target = self.bdp_bytes(self.cfg.cwnd_gain).min(self.effective_inflight_cap());
        if self.full_pipe {
            self.cwnd = (self.cwnd + ev.newly_acked).min(target);
        } else if self.cwnd < target {
            self.cwnd += ev.newly_acked;
        }
        self.cwnd = self.cwnd.max(self.min_pipe_cwnd());
    }
}

impl CongestionControl for BbrV2 {
    fn name(&self) -> &'static str {
        "bbr2"
    }

    fn on_ack(&mut self, ev: &AckEvent, _in_recovery: bool) {
        self.update_model(ev);

        match self.mode {
            Bbr2Mode::Startup => {
                self.check_full_pipe(ev);
                // v2 also leaves Startup when loss says inflight is too high.
                if !self.full_pipe && self.inflight_too_high() {
                    self.full_pipe = true;
                    self.handle_inflight_too_high(ev);
                }
                if self.full_pipe {
                    self.mode = Bbr2Mode::Drain;
                    self.pacing_gain = 1.0 / self.cfg.high_gain;
                }
            }
            Bbr2Mode::Drain => {
                if ev.inflight <= self.bdp_bytes(1.0) {
                    self.mode = Bbr2Mode::ProbeBw;
                    self.enter_phase(ProbePhase::Cruise, ev.now);
                }
            }
            Bbr2Mode::ProbeBw => self.probe_bw_step(ev),
            Bbr2Mode::ProbeRtt => {}
        }
        self.check_probe_rtt(ev);
        self.set_cwnd(ev);
    }

    fn on_loss_event(&mut self, ev: &LossEvent) {
        // Outside of deliberate probing, a loss episode that crosses the
        // threshold still cuts the ceiling (e.g. FIFO overflow caused by a
        // competing CUBIC flow filling the buffer).
        if self.inflight_too_high() {
            let ack_view = AckEvent {
                now: ev.now,
                rtt: self.rtprop,
                min_rtt: ev.min_rtt,
                srtt: self.rtprop,
                newly_acked: 0,
                newly_lost: 0,
                inflight: ev.inflight,
                delivery_rate: None,
                app_limited: false,
                delivered: ev.delivered,
                round_start: false,
                ecn_ce: false,
                is_app_limited_now: false,
            };
            self.handle_inflight_too_high(&ack_view);
            if self.mode == Bbr2Mode::ProbeBw && self.phase != ProbePhase::Down {
                self.enter_phase(ProbePhase::Down, ev.now);
            }
        }
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.prior_cwnd = self.prior_cwnd.max(self.cwnd);
        self.cwnd = self.mss;
    }

    fn on_spurious_rto(&mut self, _now: SimTime) {
        if self.prior_cwnd > 0 {
            self.cwnd = self.cwnd.max(self.prior_cwnd);
            self.prior_cwnd = 0;
        }
    }

    fn on_recovery_exit(&mut self, _now: SimTime) {
        if self.prior_cwnd > 0 {
            self.cwnd = self.cwnd.max(self.prior_cwnd);
            self.prior_cwnd = 0;
        }
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn pacing_rate(&self) -> Option<u64> {
        match self.bw_filter.get() {
            Some(bw) => Some((self.pacing_gain * bw as f64) as u64),
            None => {
                let iw_bits = (INITIAL_CWND_SEGMENTS * self.mss * 8) as f64;
                Some((self.cfg.high_gain * iw_bits / 0.001) as u64)
            }
        }
    }

    fn ssthresh(&self) -> u64 {
        u64::MAX
    }

    fn in_slow_start(&self) -> bool {
        self.mode == Bbr2Mode::Startup
    }

    fn bw_estimate(&self) -> Option<u64> {
        self.bw_filter.get()
    }

    fn state_snapshot(&self) -> CcaState {
        let phase = match self.mode {
            Bbr2Mode::Startup => "startup",
            Bbr2Mode::Drain => "drain",
            Bbr2Mode::ProbeRtt => "probe_rtt",
            Bbr2Mode::ProbeBw => match self.phase {
                ProbePhase::Down => "probe_bw:down",
                ProbePhase::Cruise => "probe_bw:cruise",
                ProbePhase::Refill => "probe_bw:refill",
                ProbePhase::Up => "probe_bw:up",
            },
        };
        CcaState {
            phase,
            cwnd: self.cwnd,
            ssthresh: u64::MAX,
            pacing_rate: self.pacing_rate(),
            bw_estimate: self.bw_filter.get(),
            pacing_gain: Some(self.pacing_gain),
        }
    }

    fn check_invariants(&self, mss: u32) -> Vec<elephants_netsim::CheckFailure> {
        let mut fails = crate::generic_cca_failures(self.cwnd(), &self.state_snapshot(), mss);
        if self.inflight_hi < self.min_pipe_cwnd() {
            let (hi, floor) = (self.inflight_hi, self.min_pipe_cwnd());
            fails.push(elephants_netsim::CheckFailure::new(
                "bbr2_inflight_hi",
                format!("inflight_hi {hi} below the {floor}-byte pipe floor"),
            ));
        }
        if !self.bw_filter.is_monotone() {
            fails.push(elephants_netsim::CheckFailure::new(
                "bbr_filter_monotone",
                "bandwidth max-filter deque lost its monotonic order".to_string(),
            ));
        }
        fails
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1000;

    struct AckFeeder {
        now: SimTime,
        delivered: u64,
    }

    impl AckFeeder {
        fn new() -> Self {
            AckFeeder { now: SimTime::ZERO, delivered: 0 }
        }

        #[allow(clippy::too_many_arguments)]
        fn ev(
            &mut self,
            advance_ms: u64,
            rate_mbps: u64,
            rtt_ms: u64,
            inflight: u64,
            round_start: bool,
            newly_lost: u64,
        ) -> AckEvent {
            self.now += SimDuration::from_millis(advance_ms);
            self.delivered += MSS as u64;
            AckEvent {
                now: self.now,
                rtt: SimDuration::from_millis(rtt_ms),
                min_rtt: SimDuration::from_millis(rtt_ms),
                srtt: SimDuration::from_millis(rtt_ms),
                newly_acked: MSS as u64,
                newly_lost,
                inflight,
                delivery_rate: Some(rate_mbps * 1_000_000),
                app_limited: false,
                delivered: self.delivered,
                round_start,
                ecn_ce: false,
                is_app_limited_now: false,
            }
        }
    }

    fn drive_to_probe_bw(b: &mut BbrV2, f: &mut AckFeeder) {
        for _ in 0..2 {
            b.on_ack(&f.ev(10, 40, 50, 300_000, true, 0), false);
        }
        for _ in 0..4 {
            b.on_ack(&f.ev(10, 40, 50, 300_000, true, 0), false);
        }
        assert_eq!(b.mode(), Bbr2Mode::Drain);
        b.on_ack(&f.ev(10, 40, 50, 200_000, false, 0), false);
        assert_eq!(b.mode(), Bbr2Mode::ProbeBw);
        assert_eq!(b.phase(), ProbePhase::Cruise);
    }

    #[test]
    fn startup_to_drain_to_probe_bw() {
        let mut b = BbrV2::new(BbrV2Config::default(), MSS);
        let mut f = AckFeeder::new();
        assert_eq!(b.mode(), Bbr2Mode::Startup);
        drive_to_probe_bw(&mut b, &mut f);
    }

    #[test]
    fn cruise_waits_then_refills_then_probes_up() {
        let mut b = BbrV2::new(BbrV2Config::default(), MSS);
        let mut f = AckFeeder::new();
        drive_to_probe_bw(&mut b, &mut f);
        // Cruise for up to 3 s (base 2 s + rand 1 s).
        let mut phases = vec![];
        for _ in 0..80 {
            b.on_ack(&f.ev(50, 40, 50, 240_000, true, 0), false);
            phases.push(b.phase());
        }
        assert!(phases.contains(&ProbePhase::Refill), "{phases:?}");
        assert!(phases.contains(&ProbePhase::Up), "{phases:?}");
    }

    #[test]
    fn excessive_loss_in_up_cuts_inflight_hi_and_goes_down() {
        let mut b = BbrV2::new(BbrV2Config::default(), MSS);
        let mut f = AckFeeder::new();
        drive_to_probe_bw(&mut b, &mut f);
        // Walk to UP.
        for _ in 0..80 {
            b.on_ack(&f.ev(50, 40, 50, 240_000, true, 0), false);
            if b.phase() == ProbePhase::Up {
                break;
            }
        }
        assert_eq!(b.phase(), ProbePhase::Up);
        // A round with ~10 % loss (well over the 2 % threshold).
        for _ in 0..10 {
            b.on_ack(&f.ev(5, 40, 50, 300_000, false, 100), false);
        }
        b.on_ack(&f.ev(5, 40, 50, 300_000, true, 100), false);
        assert_eq!(b.phase(), ProbePhase::Down, "must bail out of UP");
        let hi = b.inflight_hi();
        assert!(hi < 300_000, "inflight_hi must be cut, got {hi}");
        // Cut is (1-beta) = 0.7 of max(inflight, BDP).
        let bdp = 40_000_000u64 / 8 / 20;
        let expect = (300_000f64.max(bdp as f64) * 0.7) as u64;
        assert!((hi as i64 - expect as i64).abs() < 2 * MSS as i64, "hi={hi} expect≈{expect}");
    }

    #[test]
    fn small_loss_rates_are_tolerated() {
        // ~1 % loss: below the 2 % threshold, no cut — this is the RED
        // regime where BBRv2 dominates CUBIC in the paper.
        let mut b = BbrV2::new(BbrV2Config::default(), MSS);
        let mut f = AckFeeder::new();
        drive_to_probe_bw(&mut b, &mut f);
        for i in 0..300 {
            let lost = if i % 100 == 0 { MSS as u64 } else { 0 };
            b.on_ack(&f.ev(5, 40, 50, 240_000, i % 25 == 0, lost), false);
        }
        assert_eq!(b.inflight_hi(), u64::MAX, "1% loss must not cut inflight_hi");
    }

    #[test]
    fn cruise_keeps_headroom_below_inflight_hi() {
        let mut b = BbrV2::new(BbrV2Config::default(), MSS);
        let mut f = AckFeeder::new();
        drive_to_probe_bw(&mut b, &mut f);
        // Force a known ceiling.
        b.inflight_hi = 100_000;
        b.enter_phase(ProbePhase::Cruise, f.now);
        for _ in 0..50 {
            b.on_ack(&f.ev(5, 40, 50, 80_000, false, 0), false);
        }
        assert!(b.cwnd() <= 85_000, "cruise cwnd {} must respect 15% headroom", b.cwnd());
    }

    #[test]
    fn startup_exits_on_excessive_loss() {
        let mut b = BbrV2::new(BbrV2Config::default(), MSS);
        let mut f = AckFeeder::new();
        // One clean round, then a sustained very lossy stretch (enough
        // delivered data and distinct loss events to clear the robustness
        // gates).
        b.on_ack(&f.ev(10, 40, 50, 100_000, true, 0), false);
        for _ in 0..30 {
            b.on_ack(&f.ev(2, 40, 50, 100_000, false, 200), false);
        }
        assert_ne!(b.mode(), Bbr2Mode::Startup, "loss must end startup");
        assert!(b.inflight_hi() < u64::MAX);
    }

    #[test]
    fn rto_and_recovery_round_trip() {
        let mut b = BbrV2::new(BbrV2Config::default(), MSS);
        let mut f = AckFeeder::new();
        drive_to_probe_bw(&mut b, &mut f);
        let before = b.cwnd();
        b.on_rto(f.now);
        assert_eq!(b.cwnd(), MSS as u64);
        b.on_recovery_exit(f.now);
        assert!(b.cwnd() >= before);
    }

    #[test]
    fn probe_rtt_uses_half_bdp_floor() {
        let mut b = BbrV2::new(BbrV2Config::default(), MSS);
        let mut f = AckFeeder::new();
        drive_to_probe_bw(&mut b, &mut f);
        // Stale the 5 s window.
        for _ in 0..60 {
            b.on_ack(&f.ev(100, 40, 60, 240_000, false, 0), false);
        }
        assert_eq!(b.mode(), Bbr2Mode::ProbeRtt);
        // Floor is 0.5 * BDP = 125 kB, not 4 segments.
        assert!(b.cwnd() >= 4 * MSS as u64);
        assert!(b.cwnd() <= 130_000, "cwnd {}", b.cwnd());
    }
}
