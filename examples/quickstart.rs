//! Quickstart: how do BBRv1 and CUBIC share a 100 Mbps bottleneck?
//!
//! Reproduces one cell of the paper's Figure 2(a): BBRv1 vs CUBIC through a
//! FIFO queue, sweeping the buffer size, and shows BBRv1 winning at small
//! buffers while CUBIC claws back share as the buffer grows.
//!
//! Run with: `cargo run --release -p examples --bin quickstart`

use elephants::FairnessStudy;

fn main() {
    println!("BBRv1 vs CUBIC, 100 Mbps bottleneck, FIFO, 62 ms RTT\n");
    println!("{:>10}  {:>12}  {:>12}  {:>7}  {:>5}", "buffer", "BBRv1 Mbps", "CUBIC Mbps", "Jain", "util");
    for queue_bdp in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let outcome = FairnessStudy::builder()
            .cca_pair("bbr1", "cubic")
            .aqm("fifo")
            .bandwidth_mbps(100)
            .queue_bdp(queue_bdp)
            .duration_secs(30)
            .build()
            .expect("valid study")
            .run();
        println!(
            "{:>8} x  {:>12.2}  {:>12.2}  {:>7.3}  {:>5.2}",
            queue_bdp, outcome.sender1_mbps, outcome.sender2_mbps, outcome.jain, outcome.utilization
        );
    }
    println!("\n(x = multiples of the bandwidth-delay product, 775 kB here)");
}
