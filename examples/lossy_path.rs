//! Lossy path: the paper's future-work experiment, implemented.
//!
//! "In future work, we intend to ... observe performance under network
//! anomalies (e.g. variable rates of packet loss)". This example injects
//! Bernoulli loss on the bottleneck (the `LossModel` extension) and shows
//! the classic split: loss-based CCAs (CUBIC/Reno) collapse as random loss
//! rises, while the model-based BBRs shrug it off until the loss rate
//! crosses BBRv2's 2 % threshold.
//!
//! This example drives the simulator directly (no FairnessStudy wrapper) to
//! show the lower-level API: topology, AQM install, fault injection, flows.
//!
//! Run with: `cargo run --release -p examples --bin lossy_path`

use elephants::cca::{build_cca_seeded, CcaKind};
use elephants::netsim::prelude::*;
use elephants::netsim::LossModel;
use elephants::tcp::{ReceiverConfig, SenderConfig, TcpReceiver, TcpSender};

fn run_one(kind: CcaKind, loss: f64) -> f64 {
    let bw = Bandwidth::from_mbps(500);
    let spec = DumbbellSpec::paper(bw);
    let mut topo = spec.build();
    // 2 BDP droptail bottleneck with Bernoulli loss injected on the wire.
    let bdp = bdp_bytes(bw, topo.base_rtt());
    topo.set_bottleneck_aqm(Box::new(DropTail::new(2 * bdp)));
    let bn = topo.bottleneck_link().expect("dumbbell has a bottleneck");
    topo.link_mut(bn).loss_model = LossModel::Bernoulli { p: loss };

    let duration = SimDuration::from_secs(12);
    let mut sim = Simulator::new(
        topo,
        SimConfig { duration, warmup: SimDuration::from_secs(3), max_events: u64::MAX },
        42,
    );
    let tx = TcpSender::new(
        SenderConfig::default(),
        spec.receiver(0),
        build_cca_seeded(kind, 8900, 7),
    );
    let rx = TcpReceiver::new(ReceiverConfig::default(), spec.sender(0));
    let flow = sim.add_flow(spec.sender(0), spec.receiver(0), Box::new(tx), Box::new(rx), SimTime::ZERO);
    let summary = sim.run();
    summary.flows[flow.0 as usize].window_goodput_bps(summary.window) / 1e6
}

fn main() {
    let kinds = [CcaKind::Cubic, CcaKind::Reno, CcaKind::Htcp, CcaKind::BbrV1, CcaKind::BbrV2];
    println!("Single flow, 500 Mbps bottleneck, random in-flight loss\n");
    print!("{:>9}", "loss %");
    for k in kinds {
        print!("  {:>8}", k.pretty());
    }
    println!();
    for loss in [0.0, 0.0001, 0.001, 0.01, 0.03] {
        print!("{:>9.2}", loss * 100.0);
        for k in kinds {
            print!("  {:>8.1}", run_one(k, loss));
        }
        println!();
    }
    println!("\n(goodput in Mbps; model-based BBR tolerates random loss far better)");
}
