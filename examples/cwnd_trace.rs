//! Congestion-window time trace: watch one CUBIC epoch cycle unfold.
//!
//! Demonstrates the simulator's `run_until` stepping API: advance the
//! clock in 500 ms slices and sample sender state between steps — the
//! moral equivalent of `ss -ti` polling on a real sender.
//!
//! Run with: `cargo run --release -p examples --bin cwnd_trace`

use elephants::cca::{build_cca_seeded, CcaKind};
use elephants::netsim::prelude::*;
use elephants::tcp::{ReceiverConfig, SenderConfig, TcpReceiver, TcpSender};

fn main() {
    let bw = Bandwidth::from_mbps(500);
    let spec = DumbbellSpec::paper(bw);
    let mut topo = spec.build();
    let bdp = bdp_bytes(bw, topo.base_rtt());
    topo.set_bottleneck_aqm(Box::new(DropTail::new(4 * bdp)));
    let mut sim = Simulator::new(
        topo,
        SimConfig {
            duration: SimDuration::from_secs(40),
            warmup: SimDuration::from_secs(1),
            max_events: u64::MAX,
        },
        3,
    );
    let tx = TcpSender::new(
        SenderConfig::default(),
        spec.receiver(0),
        build_cca_seeded(CcaKind::Cubic, 8900, 1),
    );
    let rx = TcpReceiver::new(ReceiverConfig::default(), spec.sender(0));
    let flow = sim.add_flow(spec.sender(0), spec.receiver(0), Box::new(tx), Box::new(rx), SimTime::ZERO);
    let bn = sim.topology().bottleneck_link().unwrap();

    println!("single CUBIC flow, 500 Mbps bottleneck, 4 BDP droptail, 62 ms RTT\n");
    println!("{:>6} {:>11} {:>11} {:>7} {:>7}", "t(s)", "cwnd(pkts)", "queue(pkts)", "drops", "retx");
    let mut last_drops = 0;
    for step in 1..=80u64 {
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(step * 500));
        let drops = sim.topology().link(bn).aqm_stats().dropped_total();
        let sender = sim.sender(flow).as_any().downcast_ref::<TcpSender>().unwrap();
        println!(
            "{:>6.1} {:>11} {:>11} {:>7} {:>7}",
            step as f64 * 0.5,
            sender.cca().cwnd() / 8900,
            sim.topology().link(bn).aqm.backlog_pkts(),
            drops - last_drops,
            sender.retransmits(),
        );
        last_drops = drops;
    }
    println!("\nThe sawtooth: slow start, HyStart exit, cubic growth into the buffer,");
    println!("overflow, multiplicative decrease, concave re-approach to W_max.");
}
