//! AQM shootout: FIFO vs RED vs FQ_CODEL on an increasingly fast link.
//!
//! Reproduces the paper's §5.3 headline in miniature: FIFO sustains full
//! utilization everywhere, while RED's unscaled thresholds collapse
//! throughput once the link outgrows them (≥1 Gbps), and FQ_CODEL sits in
//! between.
//!
//! Run with: `cargo run --release -p examples --bin aqm_shootout`

use elephants::FairnessStudy;

fn main() {
    println!("Intra-CCA CUBIC, 2 BDP buffer: link utilization by AQM\n");
    println!("{:<10}  {:>8}  {:>8}  {:>10}", "bandwidth", "fifo", "red", "fq_codel");
    for (label, mbps, secs) in
        [("100 Mbps", 100u64, 30u64), ("500 Mbps", 500, 20), ("1 Gbps", 1000, 15), ("10 Gbps", 10_000, 6)]
    {
        let mut row = format!("{label:<10}");
        for aqm in ["fifo", "red", "fq_codel"] {
            let out = FairnessStudy::builder()
                .cca_pair("cubic", "cubic")
                .aqm(aqm)
                .bandwidth_mbps(mbps)
                .queue_bdp(2.0)
                .duration_secs(secs)
                .flow_scale(if mbps >= 10_000 { 0.25 } else { 1.0 })
                .build()
                .expect("valid study")
                .run();
            row.push_str(&format!("  {:>8.3}", out.utilization));
        }
        println!("{row}");
    }
    println!("\nWatch the RED column fall off past 1 Gbps — its byte thresholds");
    println!("were sized for sub-Gbps links and are a sliver of the BDP here.");
}
