//! Elephant transfer: which CCA should a science DMZ pick for bulk data?
//!
//! The paper's motivating scenario — long-running high-volume transfers
//! (instrument data, genomics, imaging) over a shared 10 Gbps WAN path.
//! This example pits each candidate CCA against a CUBIC-dominated link and
//! reports throughput, fairness and the retransmission cost, mirroring the
//! trade-off behind the paper's Table 3 recommendation (BBRv2 + FQ_CODEL).
//!
//! Run with: `cargo run --release -p examples --bin elephant_transfer`

use elephants::FairnessStudy;

fn main() {
    let ccas = ["bbr1", "bbr2", "htcp", "reno", "cubic"];
    println!("Candidate CCA vs CUBIC background traffic, 10 Gbps, 2 BDP buffer\n");
    for aqm in ["fifo", "fq_codel"] {
        println!("-- bottleneck AQM: {aqm} --");
        println!(
            "{:<6}  {:>11}  {:>11}  {:>6}  {:>6}  {:>9}",
            "CCA", "ours Mbps", "CUBIC Mbps", "Jain", "util", "retx/run"
        );
        for cca in ccas {
            let out = FairnessStudy::builder()
                .cca_pair(cca, "cubic")
                .aqm(aqm)
                .bandwidth_gbps(10)
                .queue_bdp(2.0)
                .duration_secs(6)
                // 200 flows at 10G is the paper's Table 2 load; a quarter of
                // that keeps this example snappy on a laptop.
                .flow_scale(0.25)
                .build()
                .expect("valid study")
                .run();
            println!(
                "{:<6}  {:>11.0}  {:>11.0}  {:>6.3}  {:>6.2}  {:>9.0}",
                cca, out.sender1_mbps, out.sender2_mbps, out.jain, out.utilization, out.retransmits
            );
        }
        println!();
    }
    println!("Higher Jain + high utilization + modest retransmissions = good citizen.");
}
