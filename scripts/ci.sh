#!/usr/bin/env bash
# CI entry point: the workspace must build and test fully offline.
#
# The workspace is hermetic — every dependency is an in-repo path crate —
# so `--offline` is not a restriction but an enforcement: any reintroduced
# registry dependency fails resolution here before it fails review.
#
# Modes:
#   scripts/ci.sh                build + lint + test (the default gate)
#   scripts/ci.sh --bench-smoke  also run every bench in one-shot `--test`
#                                mode (one iteration, no timing) to catch
#                                bench-code rot without measurement cost
set -euo pipefail

cd "$(dirname "$0")/.."

bench_smoke=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) bench_smoke=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cargo build --release --offline
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo test -q --offline

if [[ "$bench_smoke" -eq 1 ]]; then
  cargo bench --offline -p elephants-bench -- --test
fi
