#!/usr/bin/env bash
# CI entry point: the workspace must build and test fully offline.
#
# The workspace is hermetic — every dependency is an in-repo path crate —
# so `--offline` is not a restriction but an enforcement: any reintroduced
# registry dependency fails resolution here before it fails review.
#
# Modes:
#   scripts/ci.sh                build + lint + test (the default gate)
#   scripts/ci.sh --bench-smoke  also run every bench in one-shot `--test`
#                                mode (one iteration, no timing) to catch
#                                bench-code rot without measurement cost
#   scripts/ci.sh --fault-smoke  also run one link-flap and one
#                                variable-loss scenario through the
#                                fault-tolerant sweep binary in quick mode
#                                and assert zero failed cells
#   scripts/ci.sh --record-smoke also run one short recorded scenario
#                                through the probe binary with the full
#                                flight recorder on; probe re-parses its own
#                                record through the versioned parser, so a
#                                schema regression fails here
#   scripts/ci.sh --check-smoke  also run one short scenario per CCA x AQM
#                                pair (5 x 5) through the probe binary with
#                                `--check strict`, built in the `checked`
#                                profile (release speed + debug assertions):
#                                any runtime-invariant violation panics the
#                                run and fails the lane; one extra cell runs
#                                with --coalesce so the GRO-style receive
#                                path is strict-checked too
#   scripts/ci.sh --fuzz-smoke   also run the chaos fuzzer: ~25 fixed-seed
#                                generated scenarios through the strict
#                                four-oracle judge (invariants, graceful
#                                termination, determinism, artifact
#                                round-trip) plus a full replay of the
#                                committed regression corpus; any finding
#                                or corpus regression fails the lane
#   scripts/ci.sh --topo-smoke   also run the topology lane: the dumbbell
#                                equivalence suite (byte-identical RunMetrics
#                                and cache keys vs pre-topology fixtures), a
#                                strict-checked 3-hop parking-lot probe run
#                                with per-hop link reports, and the
#                                rtt_unfair binary (which exits nonzero if
#                                the short-RTT BBR share is not monotone in
#                                the RTT ratio)
#   scripts/ci.sh --dynamics-smoke  also run the fairness-dynamics lane:
#                                the dynamics binary on the quick 100 Mbps
#                                scenario (exits nonzero unless BBRv1-vs-
#                                CUBIC shows the paper's early-suppression/
#                                partial-recovery shape and a late CUBIC
#                                joiner claims fair share in finite time)
#                                plus a replay of the flight-record
#                                back-compat suite (v1/v2 fixtures must
#                                still parse with counters backfilled)
#   scripts/ci.sh --bench-gate   also run the tracked engine benchmarks
#                                against a scratch copy of the committed
#                                BENCH_netsim.json and fail when events/sec
#                                drops more than 10% below the previous
#                                committed entry (the PR 6 regression
#                                detector; threshold: BENCH_GATE_THRESHOLD)
set -euo pipefail

cd "$(dirname "$0")/.."

bench_smoke=0
fault_smoke=0
record_smoke=0
check_smoke=0
fuzz_smoke=0
topo_smoke=0
dynamics_smoke=0
bench_gate=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) bench_smoke=1 ;;
    --fault-smoke) fault_smoke=1 ;;
    --record-smoke) record_smoke=1 ;;
    --check-smoke) check_smoke=1 ;;
    --fuzz-smoke) fuzz_smoke=1 ;;
    --topo-smoke) topo_smoke=1 ;;
    --dynamics-smoke) dynamics_smoke=1 ;;
    --bench-gate) bench_gate=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cargo build --release --offline
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo test -q --offline

if [[ "$bench_smoke" -eq 1 ]]; then
  cargo bench --offline -p elephants-bench -- --test
fi

if [[ "$bench_gate" -eq 1 ]]; then
  # Fresh measurement of the tracked engine scenarios, gated against the
  # committed trajectory. The measurement goes to a scratch copy so CI
  # never dirties BENCH_netsim.json; the gate still compares against the
  # committed entries because the copy carries them.
  gate_out="$(mktemp)"
  trap 'rm -f "$gate_out"' EXIT
  cp BENCH_netsim.json "$gate_out"
  BENCH_OUT="$gate_out" BENCH_GATE=1 BENCH_LABEL=ci-gate \
    cargo bench --offline -p elephants-bench --bench engine -- engine/25gbps_fifo
fi

if [[ "$fault_smoke" -eq 1 ]]; then
  # Two anomaly scenarios on a tiny grid: a mid-run bottleneck flap and
  # Gilbert-Elliott variable loss. Each must complete with zero failed
  # cells — the watchdogs and panic isolation exist for real failures,
  # not for routine fault injection.
  out_dir="$(mktemp -d)"
  trap 'rm -rf "$out_dir"' EXIT
  for knobs in "--flap 1.5,0.4" "--loss ge:0.002,0.2"; do
    # shellcheck disable=SC2086  # knobs is deliberately word-split
    summary="$(cargo run --release --offline -p elephants-experiments --bin sweep -- \
      --quick --bw 100M --limit 2 --no-cache --out "$out_dir" $knobs 2>&1 | \
      tee /dev/stderr | grep 'failed_cells:')"
    if ! grep -q 'failed_cells: 0 ' <<<"$summary"; then
      echo "fault smoke ($knobs) reported failed cells: $summary" >&2
      exit 1
    fi
  done
fi

if [[ "$record_smoke" -eq 1 ]]; then
  # One short recorded run with every channel on. The probe binary reads
  # its record back through FlightRecord::parse (which rejects schema
  # mismatches), so success here means the artifact is valid end to end;
  # the grep asserts it actually got that far.
  rec_dir="$(mktemp -d)"
  trap 'rm -rf "$rec_dir"' EXIT
  out="$(cargo run --release --offline -p elephants-experiments --bin probe -- \
    --cca1 bbr1 --cca2 cubic --aqm fifo --queue 2 --bw 100M --secs 5 \
    --record flows,queue,events --out "$rec_dir" 2>&1 | tee /dev/stderr)"
  if ! grep -q 'record       :' <<<"$out"; then
    echo "record smoke: probe did not verify a flight record" >&2
    exit 1
  fi
fi

if [[ "$fuzz_smoke" -eq 1 ]]; then
  # A bounded fixed-seed chaos campaign plus the committed-corpus replay.
  # `--no-commit` keeps CI from dirtying the working tree: a finding here
  # fails the lane and is reproduced locally (same seed, same case) where
  # the shrunk fixture can be committed alongside the fix. The greps pin
  # the machine-readable summary lines, so a silently-vacuous run (zero
  # cases, missing corpus) also fails.
  out="$(cargo run --release --offline -p elephants-chaos --bin chaos -- \
    --cases 25 --seed 1 --no-commit 2>&1 | tee /dev/stderr)"
  if ! grep -Eq 'chaos-summary: cases=25 passed=[0-9]+ skipped=[0-9]+ failed=0' <<<"$out"; then
    echo "fuzz smoke: campaign reported findings (or ran no cases)" >&2
    exit 1
  fi
  if ! grep -Eq 'chaos-corpus: fixtures=[1-9][0-9]* failures=0' <<<"$out"; then
    echo "fuzz smoke: corpus replay failed or corpus is empty" >&2
    exit 1
  fi
fi

if [[ "$topo_smoke" -eq 1 ]]; then
  # The topology subsystem's safety envelope plus its two new behaviors.
  # 1. Dumbbell equivalence: RunMetrics JSON and cache keys byte-identical
  #    to fixtures pinned before the subsystem existed.
  cargo test -q --offline -p integration-tests --test topology_equiv

  # 2. Multi-bottleneck strict run: a 3-hop parking lot under the strict
  #    checker must finish with zero violations and report one busy link
  #    line per hop.
  out="$(cargo run --release --offline -p elephants-experiments --bin probe -- \
    --cca1 cubic --cca2 cubic --aqm fifo --queue 2 --bw 100M --secs 5 \
    --topology parking-lot:3 --check strict 2>&1 | tee /dev/stderr)"
  if ! grep -q 'check        : mode=Strict' <<<"$out"; then
    echo "topo smoke: strict checker did not report" >&2
    exit 1
  fi
  if ! grep -q 'violations=0' <<<"$out"; then
    echo "topo smoke: violations reported on the parking lot" >&2
    exit 1
  fi
  if [[ "$(grep -c 'link' <<<"$out" || true)" -lt 3 ]]; then
    echo "topo smoke: expected per-hop link report lines" >&2
    exit 1
  fi

  # 3. RTT-unfairness: rtt_unfair exits nonzero unless the short-RTT BBR
  #    share grows monotonically through the 1:1/2:1/4:1 ratios.
  out="$(cargo run --release --offline -p elephants-experiments --bin rtt_unfair -- \
    --bw 100M --secs 10 2>&1 | tee /dev/stderr)"
  if ! grep -q 'rtt-unfair: monotone=yes' <<<"$out"; then
    echo "topo smoke: rtt_unfair did not report monotone shares" >&2
    exit 1
  fi
fi

if [[ "$dynamics_smoke" -eq 1 ]]; then
  # The fairness-dynamics lane: windowed-analysis claims plus schema
  # back-compat.
  # 1. The dynamics binary runs the CCA-pair matrix with the recorder on
  #    and exits nonzero if BBRv1-vs-CUBIC loses the paper's shape or the
  #    late CUBIC joiner never reaches fair share; the grep pins the
  #    machine-readable summary so a silently-vacuous run also fails.
  dyn_dir="$(mktemp -d)"
  trap 'rm -rf "$dyn_dir"' EXIT
  out="$(cargo run --release --offline -p elephants-experiments --bin dynamics -- \
    --bw 100M --secs 10 --seed 1 --out "$dyn_dir" 2>&1 | tee /dev/stderr)"
  if ! grep -q 'dynamics: pairs=5 shape=ok late_join=ok' <<<"$out"; then
    echo "dynamics smoke: shape or late-join gate failed" >&2
    exit 1
  fi
  if [[ ! -s "$dyn_dir/dynamics.md" ]]; then
    echo "dynamics smoke: markdown report missing" >&2
    exit 1
  fi

  # 2. Record-version back-compat: committed v1/v2 fixtures must parse
  #    with the v3 counters backfilled (plus the recorder-identity tests
  #    riding in the same suite).
  cargo test -q --offline -p integration-tests --test telemetry
fi

if [[ "$check_smoke" -eq 1 ]]; then
  # The full CCA x AQM grid, one short strict-mode run per cell, in the
  # `checked` profile so debug assertions guard the hot path at release
  # speed. A violated invariant panics inside the run; the grep confirms
  # the checker actually observed events rather than silently no-opping.
  for cca in reno cubic htcp bbr1 bbr2; do
    for aqm in fifo red codel fq_codel pie; do
      out="$(cargo run --profile checked --offline -p elephants-experiments --bin probe -- \
        --cca1 "$cca" --cca2 cubic --aqm "$aqm" --queue 2 --bw 100M --secs 5 \
        --check strict 2>&1 | tee /dev/stderr)"
      if ! grep -q 'check        : mode=Strict' <<<"$out"; then
        echo "check smoke ($cca/$aqm): strict checker did not report" >&2
        exit 1
      fi
      if ! grep -q 'violations=0' <<<"$out"; then
        echo "check smoke ($cca/$aqm): violations reported" >&2
        exit 1
      fi
    done
  done

  # One coalescing-enabled cell: the GRO-style receive path must satisfy
  # the same strict invariants as the per-segment default.
  out="$(cargo run --profile checked --offline -p elephants-experiments --bin probe -- \
    --cca1 cubic --cca2 cubic --aqm fifo --queue 2 --bw 100M --secs 5 \
    --coalesce --check strict 2>&1 | tee /dev/stderr)"
  if ! grep -q 'check        : mode=Strict' <<<"$out"; then
    echo "check smoke (coalesce): strict checker did not report" >&2
    exit 1
  fi
  if ! grep -q 'violations=0' <<<"$out"; then
    echo "check smoke (coalesce): violations reported" >&2
    exit 1
  fi
fi
