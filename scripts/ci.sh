#!/usr/bin/env bash
# CI entry point: the workspace must build and test fully offline.
#
# The workspace is hermetic — every dependency is an in-repo path crate —
# so `--offline` is not a restriction but an enforcement: any reintroduced
# registry dependency fails resolution here before it fails review.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
