"""Extract EXPERIMENTS.md summary tables from results/cache."""
import json, glob, re

def load():
    rows = {}
    for f in glob.glob('results/cache/*.json'):
        name = f.split('/')[-1][:-5]
        m = re.match(r'(\w+)-(\w+)-(\w+)-q([\d.]+)bdp-(\d+)mbps-d\d+ms-w\d+ms-fs[\d.]+-mss\d+-ecn\d-rtt62-s1', name)
        if not m:
            continue
        key = (m.group(1), m.group(2), m.group(3), float(m.group(4)), int(m.group(5)))
        rows[key] = json.load(open(f))
    return rows

BWS = [100, 500, 1000, 10000, 25000]
QS = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
BWL = {100: '100M', 500: '500M', 1000: '1G', 10000: '10G', 25000: '25G'}

def bw_fmt(bw):
    return BWL[bw]

def equilibrium(rows, cca, bw):
    """First buffer size where cubic overtakes cca (None if never)."""
    for q in QS:
        r = rows.get((cca, 'cubic', 'fifo', q, bw))
        if r and r['sender_mbps'][1] > r['sender_mbps'][0]:
            return q
    return None

if __name__ == '__main__':
    rows = load()
    print(f"# parsed {len(rows)} runs\n")

    print("## Fig2 equilibrium points (first buffer where CUBIC overtakes, FIFO)")
    for cca in ('bbr1', 'bbr2', 'htcp', 'reno'):
        line = f"  {cca:>5}:"
        for bw in BWS:
            e = equilibrium(rows, cca, bw)
            line += f" {bw_fmt(bw)}:{e if e else '>16'}"
        print(line)

    print("\n## Jain 2 BDP inter (fig3a/5a/6a layout: rows bw, cols pair)")
    for aqm in ('fifo', 'red', 'fq_codel'):
        print(f"  -- {aqm} --")
        for bw in BWS:
            line = f"    {bw_fmt(bw):>5}:"
            for cca in ('bbr1', 'bbr2', 'htcp', 'reno'):
                r = rows.get((cca, 'cubic', aqm, 2.0, bw))
                line += f" {cca}={r['jain']:.3f}" if r else f" {cca}=n/a"
            print(line)

    print("\n## Utilization (fig7), intra-CCA, 2 BDP")
    for aqm in ('fifo', 'red', 'fq_codel'):
        for cca in ('bbr1', 'bbr2', 'htcp', 'reno', 'cubic'):
            line = f"  {aqm:>8} {cca:>5}:"
            for bw in BWS:
                r = rows.get((cca, cca, aqm, 2.0, bw))
                line += f" {r['utilization']:.3f}" if r else "  n/a "
            print(line)

    print("\n## Retransmissions (fig8), intra-CCA, 2 BDP")
    for aqm in ('fifo', 'red', 'fq_codel'):
        for cca in ('bbr1', 'bbr2', 'htcp', 'reno', 'cubic'):
            line = f"  {aqm:>8} {cca:>5}:"
            for bw in BWS:
                r = rows.get((cca, cca, aqm, 2.0, bw))
                line += f" {r['retransmits']:>7}" if r else "    n/a"
            print(line)

    print("\n## Table 3 (avg over 6 queues x 5 bws)")
    pairs = [('bbr1','bbr1'),('bbr1','cubic'),('bbr2','bbr2'),('bbr2','cubic'),
             ('htcp','htcp'),('htcp','cubic'),('reno','reno'),('reno','cubic'),
             ('cubic','cubic')]
    for aqm in ('fifo', 'red', 'fq_codel'):
        ref = {}
        for q in QS:
            for bw in BWS:
                r = rows.get(('cubic','cubic',aqm,q,bw))
                if r:
                    ref[(q,bw)] = max(r['retransmits'], 1)
        for (c1, c2) in pairs:
            phis, js, rrs = [], [], []
            for q in QS:
                for bw in BWS:
                    r = rows.get((c1,c2,aqm,q,bw))
                    if not r or (q,bw) not in ref:
                        continue
                    phis.append(r['utilization']); js.append(r['jain'])
                    rrs.append(r['retransmits']/ref[(q,bw)])
            if phis:
                n = len(phis)
                print(f"  {aqm:>8} {c1:>5} vs {c2:>5} (n={n:2}): phi={sum(phis)/n:.3f} RR={sum(rrs)/n:8.3f} J={sum(js)/n:.3f}")
