#!/usr/bin/env bash
# Benchmark-regression pipeline.
#
# Runs the engine benchmark on the three tracked scenarios — the paper's
# 25 Gbps FIFO cell at quick scale, the same cell at standard scale
# (Table 2's 500-flow workload), and the 3-hop parking lot exercising the
# multi-bottleneck path — and folds the measurements into
# BENCH_netsim.json at the workspace root (events/sec, ns/event,
# min/median/max sample spread, peak bottleneck-queue depth). Entries are
# keyed by BENCH_LABEL (default "current"; the Table-2 entry appends
# "-table2", the parking-lot entry "-parkinglot"; override with
# BENCH_LABEL_TABLE2 / BENCH_LABEL_PARKINGLOT); re-running with the same
# label replaces that entry, so the file is an append-only perf trajectory
# across PRs.
#
# Usage:
#   scripts/bench.sh                 # measure and record under "current"
#   BENCH_LABEL=pr7 scripts/bench.sh # record under a milestone label
#   scripts/bench.sh --gate          # then fail if events/sec dropped >10%
#                                    # vs the previous committed entry
#                                    # (threshold: BENCH_GATE_THRESHOLD)
#   scripts/bench.sh --all           # also run the non-regression benches
#
# The gate is how a PR 6-style silent regression gets caught: it compares
# each fresh entry against the previous committed entry for the same
# benchmark id (see EXPERIMENTS.md for the methodology).
set -euo pipefail

cd "$(dirname "$0")/.."

FILTER="engine/"
for arg in "$@"; do
  case "$arg" in
    --all) FILTER="" ;;
    --gate) export BENCH_GATE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cargo bench --offline -p elephants-bench --bench engine -- ${FILTER}

echo
echo "=== BENCH_netsim.json ==="
cat "${BENCH_OUT:-BENCH_netsim.json}"
