#!/usr/bin/env bash
# Benchmark-regression pipeline.
#
# Runs the engine benchmark on the paper's 25 Gbps FIFO quick scenario and
# folds the measurement into BENCH_netsim.json at the workspace root
# (events/sec, ns/event, peak bottleneck-queue depth). Entries are keyed by
# BENCH_LABEL (default "current"); re-running with the same label replaces
# that entry, so the file is an append-only perf trajectory across PRs.
#
# Usage:
#   scripts/bench.sh                 # measure and record under "current"
#   BENCH_LABEL=pr3 scripts/bench.sh # record under a milestone label
#   scripts/bench.sh --all           # also run the non-regression benches
#
# A PR regresses the engine if its events_per_sec entry drops more than 10%
# below the best previously committed entry (see EXPERIMENTS.md).
set -euo pipefail

cd "$(dirname "$0")/.."

FILTER="engine/25gbps_fifo_quick"
if [[ "${1:-}" == "--all" ]]; then
    FILTER=""
fi

cargo bench --offline -p elephants-bench --bench engine -- ${FILTER}

echo
echo "=== BENCH_netsim.json ==="
cat BENCH_netsim.json
